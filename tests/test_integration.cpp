// End-to-end integration tests: the paper's headline claims, verified on
// reduced sweeps so the suite stays fast. The full-resolution versions are
// the bench binaries (see DESIGN.md experiment index).
#include <gtest/gtest.h>

#include "ntserv/ntserv.hpp"

namespace ntserv {
namespace {

sim::ServerSimConfig fast_config() {
  sim::ServerSimConfig cfg;
  cfg.smarts.warm_instructions = 300'000;
  cfg.smarts.warmup = 10'000;
  cfg.smarts.measure = 20'000;
  cfg.smarts.min_samples = 3;
  cfg.smarts.max_samples = 5;
  return cfg;
}

power::ServerPowerModel platform() {
  return power::ServerPowerModel{
      tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, power::ChipConfig{}};
}

/// Shared three-point sweep for one workload (0.3 / 1.0 / 2.0 GHz).
dse::SweepResult mini_sweep(const workload::WorkloadProfile& profile) {
  dse::ExplorationDriver driver{platform(), fast_config()};
  return driver.sweep(profile, {mhz(300), ghz(1.0), ghz(2.0)});
}

TEST(Integration, CoresEfficiencyPeaksAtLowFrequency) {
  // Paper Fig. 3a: UIPS/W(cores) decreases monotonically with f.
  const auto sweep = mini_sweep(workload::WorkloadProfile::web_search());
  EXPECT_GT(sweep.efficiency(0, dse::Scope::kCores),
            sweep.efficiency(1, dse::Scope::kCores));
  EXPECT_GT(sweep.efficiency(1, dse::Scope::kCores),
            sweep.efficiency(2, dse::Scope::kCores));
}

TEST(Integration, SocEfficiencyPeaksNearOneGigahertz) {
  // Paper Fig. 3b: the constant uncore pushes the optimum to ~1 GHz —
  // the mid-grid point beats both extremes.
  const auto sweep = mini_sweep(workload::WorkloadProfile::web_search());
  EXPECT_GT(sweep.efficiency(1, dse::Scope::kSoc), sweep.efficiency(0, dse::Scope::kSoc));
  EXPECT_GE(sweep.efficiency(1, dse::Scope::kSoc),
            sweep.efficiency(2, dse::Scope::kSoc) * 0.95);
}

TEST(Integration, ServerOptimumAtOrRightOfSocOptimum) {
  // Paper Fig. 3c: DRAM background power moves the optimum further right.
  const auto sweep = mini_sweep(workload::WorkloadProfile::data_serving());
  EXPECT_GE(in_ghz(sweep.optimal_frequency(dse::Scope::kServer)) + 1e-9,
            in_ghz(sweep.optimal_frequency(dse::Scope::kSoc)));
}

TEST(Integration, ScaleOutAppsMeetQosWellBelowTwoGigahertz) {
  // Paper Fig. 2: QoS floors land in the 200-500 MHz band (we allow a
  // slightly wider acceptance band on the coarse test grid).
  dse::ExplorationDriver driver{platform(), fast_config()};
  const auto grid = sim::frequency_grid(mhz(200), ghz(2.0), 6);
  for (const auto& profile : workload::WorkloadProfile::scale_out_suite()) {
    const auto sweep = driver.sweep(profile, grid);
    const auto target = qos::QosTarget::for_workload(profile.name);
    const Hertz floor =
        qos::frequency_floor(target, sweep.uips_samples(), sweep.baseline_uips());
    EXPECT_GE(in_mhz(floor), 150.0) << profile.name;
    EXPECT_LE(in_mhz(floor), 700.0) << profile.name;
  }
}

TEST(Integration, VmDegradationBoundsMatchPaperBands) {
  // Paper Sec. V-A: degradation <= 4x permits ~500 MHz; <= 2x permits
  // ~1 GHz.
  dse::ExplorationDriver driver{platform(), fast_config()};
  const auto grid = sim::frequency_grid(mhz(200), ghz(2.0), 6);
  const auto sweep = driver.sweep(workload::WorkloadProfile::vm_banking_low_mem(), grid);
  const auto samples = sweep.uips_samples();
  const double base = sweep.baseline_uips();
  const Hertz f4 = qos::degradation_floor(samples, base, qos::kMaxDegradationBound);
  const Hertz f2 = qos::degradation_floor(samples, base, qos::kMinDegradationBound);
  EXPECT_LT(in_mhz(f4), 700.0);
  EXPECT_LT(f4.value(), f2.value());
  EXPECT_GT(in_mhz(f2), 400.0);
  EXPECT_LT(in_mhz(f2), 1600.0);
}

TEST(Integration, HighMemVmsOutperformLowMemVms) {
  // Paper Sec. V-B1: VMs high-mem UIPS > VMs low-mem.
  const auto lo = mini_sweep(workload::WorkloadProfile::vm_banking_low_mem());
  const auto hi = mini_sweep(workload::WorkloadProfile::vm_banking_high_mem());
  for (std::size_t i = 0; i < lo.points.size(); ++i) {
    EXPECT_GT(hi.points[i].uips, lo.points[i].uips * 0.97) << "at point " << i;
  }
}

TEST(Integration, MediaStreamingDrawsHighestBandwidth) {
  // Sec. III-A: the streaming service is the bandwidth-bound workload.
  dse::ExplorationDriver driver{platform(), fast_config()};
  const std::vector<Hertz> grid{ghz(2.0)};
  double ms_bw = 0.0, ws_bw = 0.0;
  {
    const auto s = driver.sweep(workload::WorkloadProfile::media_streaming(), grid);
    ms_bw = s.points[0].activity.dram_read_bw + s.points[0].activity.dram_write_bw;
  }
  {
    const auto s = driver.sweep(workload::WorkloadProfile::vm_banking_low_mem(), grid);
    ws_bw = s.points[0].activity.dram_read_bw + s.points[0].activity.dram_write_bw;
  }
  EXPECT_GT(ms_bw, ws_bw);
}

TEST(Integration, FdsoiBeatsBulkAtEveryOperatingPoint) {
  // The technology-level claim carried to the server level.
  const auto soi_platform = platform();
  const auto bulk_platform =
      soi_platform.with_tech(tech::TechnologyModel{tech::TechnologyParams::bulk28()});
  dse::ExplorationDriver soi_driver{soi_platform, fast_config()};
  dse::ExplorationDriver bulk_driver{bulk_platform, fast_config()};
  const auto grid = std::vector<Hertz>{ghz(1.0), ghz(2.0)};
  const auto profile = workload::WorkloadProfile::web_serving();
  const auto soi = soi_driver.sweep(profile, grid);
  const auto bulk = bulk_driver.sweep(profile, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(soi.efficiency(i, dse::Scope::kServer),
              bulk.efficiency(i, dse::Scope::kServer));
  }
}

TEST(Integration, ChipStaysWithinPowerBudgetAtNominal) {
  // Paper Sec. II-B: 100 W budget; at the 2 GHz operating point under a
  // real workload the server draw should be near (not wildly above) it.
  const auto sweep = mini_sweep(workload::WorkloadProfile::data_serving());
  EXPECT_LT(sweep.points[2].power.server().value(), 100.0);
}

}  // namespace
}  // namespace ntserv
