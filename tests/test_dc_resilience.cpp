#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dc/runner.hpp"
#include "dc/scenario.hpp"
#include "workload/profile.hpp"

namespace ntserv::dc {
namespace {

ArrivalConfig poisson(double rate) {
  ArrivalConfig a;
  a.kind = ArrivalKind::kPoisson;
  a.rate = rate;
  return a;
}

/// Small, fast two-chip fleet shared by the behavioural tests. Traffic
/// overrides go through the builder (post-build mutation of the
/// deprecated legacy traffic fields would be ignored); fault and
/// resilience knobs may still be set on the built config.
FleetConfigBuilder small_builder() {
  return FleetConfigBuilder{}
      .profile(workload::WorkloadProfile::web_search())
      .frequency(ghz(2.0))
      .shape(/*servers=*/2)
      .request_cost(3'000)
      .arrival(poisson(20'000.0))
      .requests(80, 10)
      .warm(60'000)
      .seed(3);
}

FleetConfig small_config() { return small_builder().build(); }

void expect_tiling(const FleetResult& r) {
  EXPECT_EQ(r.offered, r.completed_all + r.shed + r.timed_out + r.in_flight);
  std::uint64_t offered = 0, completed = 0, shed = 0, timed_out = 0, in_flight = 0;
  for (const auto& t : r.tenants) {
    EXPECT_EQ(t.offered, t.completed_all + t.shed + t.timed_out + t.in_flight)
        << "tenant " << t.name;
    offered += t.offered;
    completed += t.completed_all;
    shed += t.shed;
    timed_out += t.timed_out;
    in_flight += t.in_flight;
  }
  EXPECT_EQ(offered, r.offered);
  EXPECT_EQ(completed, r.completed_all);
  EXPECT_EQ(shed, r.shed);
  EXPECT_EQ(timed_out, r.timed_out);
  EXPECT_EQ(in_flight, r.in_flight);
}

TEST(Resilience, HealthyFleetIsBitIdenticalWithResilienceArmed) {
  // Failover/timeout/hedging must be pure overhead-free bookkeeping while
  // nothing fails: same completions, same tail, same span.
  auto cfg = small_config();
  const FleetResult plain = ClusterFleet{cfg}.run();
  cfg.resilience.failover = true;
  cfg.resilience.timeout = Second{5e-3};  // far above any healthy latency
  const FleetResult armed = ClusterFleet{cfg}.run();
  EXPECT_EQ(plain.completed, armed.completed);
  EXPECT_DOUBLE_EQ(plain.p99.value(), armed.p99.value());
  EXPECT_EQ(plain.span_cycles, armed.span_cycles);
  EXPECT_EQ(armed.timed_out, 0u);
  EXPECT_EQ(armed.redispatched, 0u);
}

TEST(Resilience, CrashWithoutFailoverPaysTheOutageInLatency) {
  auto cfg = small_config();
  const FleetResult healthy = ClusterFleet{cfg}.run();
  cfg.faults.events = {{1.0e-3, 0, fault::FaultKind::kCrash},
                       {2.0e-3, 0, fault::FaultKind::kRecover}};
  const FleetResult r = ClusterFleet{cfg}.run();
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.faults_injected, 2u);
  // Nothing is lost: in-flight work restarts locally at recovery and the
  // dead chip's queue waits out the outage...
  EXPECT_EQ(r.offered, r.completed_all);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.timed_out, 0u);
  EXPECT_EQ(r.redispatched, 0u);
  // ...so the ~1ms outage shows up in the tail instead.
  EXPECT_GT(r.p99.value(), healthy.p99.value() * 5.0);
  EXPECT_TRUE(r.recovered);
  EXPECT_GT(r.time_to_recover.value(), 0.0);
  expect_tiling(r);
}

TEST(Resilience, FailoverKeepsTheTailNearHealthy) {
  auto cfg = small_config();
  const FleetResult healthy = ClusterFleet{cfg}.run();
  cfg.faults.events = {{1.0e-3, 0, fault::FaultKind::kCrash},
                       {2.0e-3, 0, fault::FaultKind::kRecover}};
  const FleetResult blind = ClusterFleet{cfg}.run();
  cfg.resilience.failover = true;
  const FleetResult failover = ClusterFleet{cfg}.run();
  EXPECT_FALSE(failover.truncated);
  EXPECT_EQ(failover.offered, failover.completed_all);
  EXPECT_EQ(failover.timed_out, 0u);
  // The crash drains the victim onto the healthy chip, so the outage
  // barely moves the tail while the blind fleet's explodes.
  EXPECT_LT(failover.p99.value(), blind.p99.value() / 2.0);
  EXPECT_LT(failover.p99.value(), healthy.p99.value() * 3.0);
  expect_tiling(failover);
}

TEST(Resilience, UnrecoveredCrashStrandsInFlightWorkWithoutFailover) {
  auto cfg = small_config();
  cfg.faults.events = {{1.0e-3, 0, fault::FaultKind::kCrash}};  // never recovers
  cfg.max_cycles = 40'000'000;  // bound the wait for work that cannot finish
  const FleetResult r = ClusterFleet{cfg}.run();
  EXPECT_TRUE(r.truncated);
  EXPECT_GT(r.in_flight, 0u);
  EXPECT_FALSE(r.recovered);
  expect_tiling(r);
}

TEST(Resilience, FailoverSurvivesAnUnrecoveredCrash) {
  auto cfg = small_config();
  cfg.faults.events = {{1.0e-3, 0, fault::FaultKind::kCrash}};
  cfg.resilience.failover = true;
  const FleetResult r = ClusterFleet{cfg}.run();
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.offered, r.completed_all);
  EXPECT_EQ(r.in_flight, 0u);
  expect_tiling(r);
}

TEST(Resilience, TimeoutsExhaustTheRetryBudgetOnADarkFleet) {
  auto cfg = small_builder().shape(1).arrival(poisson(10'000.0)).requests(30, 5).build();
  cfg.faults.events = {{0.5e-3, 0, fault::FaultKind::kCrash}};  // forever
  cfg.resilience.timeout = Second{50e-6};
  const FleetResult r = ClusterFleet{cfg}.run();
  EXPECT_FALSE(r.truncated);
  // Every request that had not finished by the crash times out, retries
  // through the back-off budget onto the same dead chip, and gives up.
  EXPECT_GT(r.timed_out, 0u);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.offered, r.completed_all + r.timed_out + r.shed);
  expect_tiling(r);
}

TEST(Resilience, HedgingDuplicatesSlowRequestsAndFirstCompletionWins) {
  // 60 krps: enough queueing for hedges to fire.
  auto cfg = small_builder().arrival(poisson(60'000.0)).build();
  cfg.resilience.hedging = true;
  cfg.resilience.hedge_min_delay = Second{5e-6};
  cfg.resilience.hedge_warmup = 1'000'000;  // pin the delay at hedge_min_delay
  const FleetResult r = ClusterFleet{cfg}.run();
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.hedged, 0u);
  EXPECT_LE(r.hedged, r.offered);  // at most one hedge per request
  EXPECT_LE(r.hedge_wins, r.hedged);
  // Every loser copy is either dequeued in time or its completion is
  // discarded as wasted work; requests are never double-counted.
  EXPECT_EQ(r.offered, r.completed_all);
  EXPECT_LE(r.wasted_completions, r.hedged);
  expect_tiling(r);
}

TEST(Resilience, DegradationFrequencyCapSlowsTheFleet) {
  auto cfg = small_builder().shape(1).arrival(poisson(10'000.0)).build();
  const FleetResult healthy = ClusterFleet{cfg}.run();
  // Deep whole-run cap (0.15 of nominal -> 0.3 GHz). The slowdown is
  // sub-linear in frequency — web search is memory-bound, which is the
  // paper's NTC argument — so the latency ratio is well under 1/0.15.
  cfg.faults.events = {{1e-6, 0, fault::FaultKind::kDegrade, 0.15, 0}};
  const FleetResult degraded = ClusterFleet{cfg}.run();
  EXPECT_FALSE(degraded.truncated);
  EXPECT_EQ(degraded.offered, degraded.completed_all);
  EXPECT_GT(degraded.mean_latency.value(), healthy.mean_latency.value() * 1.5);
  EXPECT_GT(degraded.p99.value(), healthy.p99.value() * 1.3);
  expect_tiling(degraded);
}

TEST(Resilience, GuardbandChargesEnergyAndRecoversToThePin) {
  Scenario s = Scenario::by_name("ntc-guardband-web");
  Scenario healthy = s;
  healthy.faults = fault::FaultConfig{};
  const FleetResult faulted = run_scenario(s, ghz(2.0));
  const FleetResult clean = run_scenario(healthy, ghz(2.0));
  EXPECT_FALSE(faulted.truncated);
  EXPECT_GT(faulted.guardband_epochs, 0);
  EXPECT_EQ(clean.guardband_epochs, 0);
  // Bound: hold + ceil(margin/step) epochs per error event.
  const int bound = s.governor.guardband_hold_epochs + 4;  // ceil(0.12/0.03)
  EXPECT_LE(faulted.guardband_epochs, 2 * bound);  // one error event per chip
  EXPECT_GT(faulted.energy.value(), clean.energy.value());
  // The margin has fully relaxed by the end of the run on every chip.
  ASSERT_FALSE(faulted.epochs.empty());
  for (auto it = faulted.epochs.rbegin();
       it != faulted.epochs.rend() && it->epoch == faulted.epochs.back().epoch; ++it) {
    EXPECT_DOUBLE_EQ(it->margin, 0.0);
  }
  expect_tiling(faulted);
}

TEST(Resilience, FaultedRunsAreDeterministicAcrossThreadCounts) {
  Scenario s = Scenario::by_name("diurnal-chipfail");
  s.requests = 300;  // span still covers the scripted crash window
  s.warmup_requests = 20;
  std::vector<Scenario> batch{s, s};
  const auto one = run_scenarios(batch, ghz(2.0), 1);
  const auto four = run_scenarios(batch, ghz(2.0), 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_DOUBLE_EQ(one[i].p99.value(), four[i].p99.value());
    EXPECT_EQ(one[i].completed_all, four[i].completed_all);
    EXPECT_EQ(one[i].redispatched, four[i].redispatched);
    EXPECT_EQ(one[i].hedged, four[i].hedged);
    EXPECT_EQ(one[i].span_cycles, four[i].span_cycles);
  }
}

// ---- Satellite: randomized accounting property test ----
//
// offered == completed_all + shed + timed_out + in_flight must tile at
// the fleet level and per tenant for *any* combination of load, policy,
// admission, faults and resilience — the conservation law of the serving
// layer. The generator is seeded, so the "random" sample is stable.
// This test deliberately assembles raw FleetConfig values (deprecated
// legacy traffic fields, sometimes overlaid with a direct tenant table):
// it is the remaining coverage for the legacy resolution path that
// FleetConfigBuilder replaces everywhere else.
TEST(ResilienceProperty, AccountingTilesAcrossRandomizedScenarios) {
  Xoshiro256StarStar rng{derive_seed(0xACC7, 0)};
  for (int trial = 0; trial < 14; ++trial) {
    FleetConfig cfg;
    cfg.profile = workload::WorkloadProfile::web_search();
    cfg.frequency = ghz(2.0);
    cfg.servers = 1 + static_cast<int>(rng() % 3);
    cfg.user_instructions_per_request = 3'000;
    cfg.arrival.kind = ArrivalKind::kPoisson;
    cfg.arrival.rate = 8'000.0 + 5'000.0 * static_cast<double>(rng() % 8);
    cfg.requests = 60 + rng() % 60;
    cfg.warmup_requests = 8;
    cfg.warm_instructions = 60'000;
    cfg.seed = rng();
    cfg.policy = rng() % 2 == 0 ? BalancePolicy::kLeastLoaded
                                     : BalancePolicy::kRoundRobin;
    if (rng() % 2 == 0) {
      cfg.admission.enabled = true;
      cfg.admission.max_outstanding_per_core = 2.0;
    }
    // Fault schedule: none / scripted crash(+maybe recover) / stochastic.
    switch (rng() % 3) {
      case 1: {
        const int chip = static_cast<int>(rng() % cfg.servers);
        const double at = 0.3e-3 + 1e-4 * static_cast<double>(rng() % 10);
        cfg.faults.events.push_back({at, chip, fault::FaultKind::kCrash});
        if (rng() % 2 == 0) {
          cfg.faults.events.push_back({at + 0.8e-3, chip, fault::FaultKind::kRecover});
        }
        break;
      }
      case 2:
        cfg.faults.mtbf.enabled = true;
        cfg.faults.mtbf.mttf = Second{2.0e-3};
        cfg.faults.mtbf.mttr = Second{0.4e-3};
        cfg.faults.mtbf.horizon = Second{20e-3};
        break;
      default: break;
    }
    // Half the fleets carve their chips into two correlated failure
    // domains and take a rack-scale hit: a scripted domain outage or the
    // per-domain renewal stream, on top of whatever per-chip schedule the
    // switch above picked.
    if (cfg.servers >= 2 && rng() % 2 == 0) {
      fault::FaultDomain head, tail;
      head.name = "rack0";
      head.members = {0};
      tail.name = "rack1";
      for (int c = 1; c < cfg.servers; ++c) tail.members.push_back(c);
      cfg.faults.domains = {head, tail};
      if (rng() % 2 == 0) {
        fault::FaultEvent outage;
        outage.at_s = 0.3e-3 + 1e-4 * static_cast<double>(rng() % 10);
        outage.kind = fault::FaultKind::kDomainOutage;
        outage.domain = static_cast<int>(rng() % 2);
        outage.duration_s = rng() % 2 == 0 ? 0.6e-3 : 0.0;
        cfg.faults.events.push_back(outage);
      } else {
        cfg.faults.domain_mtbf.enabled = true;
        cfg.faults.domain_mtbf.mttf = Second{3.0e-3};
        cfg.faults.domain_mtbf.mttr = Second{0.5e-3};
        cfg.faults.domain_mtbf.horizon = Second{20e-3};
      }
    }
    // Resilience posture: none / failover / failover+timeout+hedging.
    switch (rng() % 3) {
      case 1: cfg.resilience.failover = true; break;
      case 2:
        cfg.resilience.failover = true;
        cfg.resilience.timeout = Second{150e-6};
        cfg.resilience.hedging = true;
        cfg.resilience.hedge_min_delay = Second{20e-6};
        cfg.resilience.hedge_warmup = 1'000'000;
        break;
      default: break;
    }
    // Brownout posture: none / full ladder / ladder + circuit breakers.
    // The ladder sheds by priority and the breakers fence chips off, so
    // both must keep the ledger tiling through every fault combination.
    // Both act at the epoch barrier, so they need a governed fleet.
    switch (rng() % 3) {
      case 1:
        cfg.governor.kind = ctrl::GovernorKind::kFixedMax;
        cfg.brownout.enabled = true;
        break;
      case 2:
        cfg.governor.kind = ctrl::GovernorKind::kFixedMax;
        cfg.brownout.enabled = true;
        cfg.breaker.enabled = true;
        break;
      default: break;
    }
    // Sometimes split the load across two tenants to exercise the
    // per-tenant tiling.
    if (rng() % 2 == 0) {
      TenantSpec a, b;
      a.name = "a";
      a.arrival = cfg.arrival;
      a.user_instructions_per_request = 3'000;
      a.requests = cfg.requests / 2;
      a.warmup_requests = 4;
      b.name = "b";
      b.arrival = cfg.arrival;
      b.arrival.rate *= 0.5;
      b.user_instructions_per_request = 3'000;
      b.requests = cfg.requests / 2;
      b.warmup_requests = 4;
      cfg.tenants = {a, b};
    }
    cfg.max_cycles = 80'000'000;  // unrecovered crashes truncate quickly

    const FleetResult r = ClusterFleet{cfg}.run();
    SCOPED_TRACE("trial " + std::to_string(trial) + " servers " +
                 std::to_string(cfg.servers) + " seed " + std::to_string(cfg.seed));
    expect_tiling(r);
    if (!r.truncated) EXPECT_EQ(r.in_flight, 0u);
  }
}

TEST(Resilience, ValidationRejectsBadConfigs) {
  {
    auto cfg = small_config();
    cfg.resilience.timeout = Second{-1.0};
    EXPECT_THROW(ClusterFleet{cfg}, ModelError);
  }
  {
    auto cfg = small_config();
    cfg.resilience.hedging = true;
    cfg.resilience.hedge_multiplier = 0.0;
    EXPECT_THROW(ClusterFleet{cfg}, ModelError);
  }
  {
    auto cfg = small_config();  // 2 servers; event names chip 5
    cfg.faults.events = {{1e-3, 5, fault::FaultKind::kCrash}};
    EXPECT_THROW(ClusterFleet{cfg}, ModelError);
  }
}

}  // namespace
}  // namespace ntserv::dc
