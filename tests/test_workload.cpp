#include <gtest/gtest.h>

#include <map>

#include "workload/bitbrains.hpp"
#include "workload/profile.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace ntserv::workload {
namespace {

class ProfileTest : public ::testing::TestWithParam<WorkloadProfile> {};

TEST_P(ProfileTest, Validates) { EXPECT_NO_THROW(GetParam().validate()); }

TEST_P(ProfileTest, MixSumsToOne) { EXPECT_NEAR(GetParam().mix.sum(), 1.0, 1e-9); }

TEST_P(ProfileTest, GeneratedMixMatchesProfile) {
  const auto profile = GetParam();
  SyntheticWorkload gen{profile, 42};
  std::map<cpu::UopType, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().type];
  EXPECT_NEAR(counts[cpu::UopType::kLoad] / static_cast<double>(n), profile.mix.load, 0.02);
  EXPECT_NEAR(counts[cpu::UopType::kStore] / static_cast<double>(n), profile.mix.store, 0.02);
  EXPECT_NEAR(counts[cpu::UopType::kBranch] / static_cast<double>(n), profile.mix.branch,
              0.03);
}

TEST_P(ProfileTest, AddressesStayInConfiguredRegions) {
  const auto profile = GetParam();
  const AddressSpace space = AddressSpace::for_core(1);
  SyntheticWorkload gen{profile, 7, space};
  for (int i = 0; i < 100000; ++i) {
    const auto op = gen.next();
    if (cpu::is_memory(op.type)) {
      const bool in_data = op.mem_addr >= space.data_base &&
                           op.mem_addr < space.data_base + profile.data_footprint +
                                             profile.stack_bytes + kCacheLineBytes;
      const bool in_shared = op.mem_addr >= space.shared_base &&
                             op.mem_addr < space.shared_base + space.shared_size;
      EXPECT_TRUE(in_data || in_shared) << std::hex << op.mem_addr;
    }
    // PC stays in the code region (user) or the OS region right above it.
    EXPECT_GE(op.pc, space.code_base);
    EXPECT_LT(op.pc, space.code_base + 2 * profile.code_footprint + kCacheLineBytes);
  }
}

TEST_P(ProfileTest, OsFractionApproximatelyRespected) {
  const auto profile = GetParam();
  SyntheticWorkload gen{profile, 11};
  int os = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    if (!gen.next().is_user) ++os;
  }
  EXPECT_NEAR(os / static_cast<double>(n), profile.os_fraction,
              0.05 + profile.os_fraction * 0.5);
}

TEST_P(ProfileTest, DeterministicForSeed) {
  const auto profile = GetParam();
  SyntheticWorkload a{profile, 123}, b{profile, 123};
  for (int i = 0; i < 10000; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    ASSERT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(x.branch_taken, y.branch_taken);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::ValuesIn([] {
                           auto v = WorkloadProfile::scale_out_suite();
                           for (auto& p : WorkloadProfile::vm_suite()) v.push_back(p);
                           return v;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(Workload, SuitesHaveThePaperWorkloads) {
  const auto suite = WorkloadProfile::scale_out_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "Data Serving");
  EXPECT_EQ(suite[1].name, "Web Search");
  EXPECT_EQ(suite[2].name, "Web Serving");
  EXPECT_EQ(suite[3].name, "Media Streaming");
  const auto vms = WorkloadProfile::vm_suite();
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_EQ(vms[0].name, "VMs low-mem");
  EXPECT_EQ(vms[1].name, "VMs high-mem");
}

TEST(Workload, VmFootprintsMatchPaperProvisioning) {
  EXPECT_EQ(WorkloadProfile::vm_banking_low_mem().data_footprint, 100 * kMiB);
  EXPECT_EQ(WorkloadProfile::vm_banking_high_mem().data_footprint, 700 * kMiB);
}

TEST(Workload, HotRegionGetsMostHeapTraffic) {
  const auto profile = WorkloadProfile::data_serving();
  const AddressSpace space;
  SyntheticWorkload gen{profile, 3, space};
  std::uint64_t hot = 0, heap = 0;
  for (int i = 0; i < 300000; ++i) {
    const auto op = gen.next();
    if (!cpu::is_memory(op.type)) continue;
    if (op.mem_addr >= space.data_base &&
        op.mem_addr < space.data_base + profile.data_footprint) {
      ++heap;
      if (op.mem_addr < space.data_base + profile.hot_footprint) ++hot;
    }
  }
  ASSERT_GT(heap, 0u);
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(heap), 0.6);
}

TEST(Workload, ValidationCatchesBadProfiles) {
  auto p = WorkloadProfile::web_search();
  p.mix.load += 0.1;
  EXPECT_THROW(p.validate(), ModelError);
  p = WorkloadProfile::web_search();
  p.hot_footprint = p.data_footprint * 2;
  EXPECT_THROW(p.validate(), ModelError);
  p = WorkloadProfile::web_search();
  p.stack_fraction = 0.9;
  p.streaming_fraction = 0.2;
  EXPECT_THROW(p.validate(), ModelError);
}

// ---- Trace record/replay ----

TEST(Trace, RecordAndReplayBitExact) {
  SyntheticWorkload gen{WorkloadProfile::media_streaming(), 17};
  const UopTrace trace = UopTrace::record(gen, 5000);
  ASSERT_EQ(trace.size(), 5000u);
  TraceReplaySource replay{trace};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto op = replay.next();
    EXPECT_EQ(op.pc, trace.at(i).pc);
    EXPECT_EQ(op.mem_addr, trace.at(i).mem_addr);
  }
  // Wraps around.
  EXPECT_EQ(replay.next().pc, trace.at(0).pc);
  EXPECT_EQ(replay.wraps(), 1u);
}

TEST(Trace, RecordingSourcePassesThrough) {
  SyntheticWorkload inner{WorkloadProfile::web_search(), 19};
  SyntheticWorkload reference{WorkloadProfile::web_search(), 19};
  RecordingSource rec{inner};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rec.next().pc, reference.next().pc);
  }
  EXPECT_EQ(rec.trace().size(), 1000u);
}

TEST(Trace, EmptyReplayThrows) {
  UopTrace empty;
  EXPECT_THROW(TraceReplaySource{empty}, ModelError);
}

// ---- Bitbrains population model ----

TEST(Bitbrains, PopulationSizeMatchesArchive) {
  BitbrainsTraceModel model;
  EXPECT_EQ(model.sample_population().size(), 1750u);
}

TEST(Bitbrains, SummaryHasTwoClasses) {
  BitbrainsTraceModel model;
  const auto summary = BitbrainsTraceModel::summarize(model.sample_population());
  EXPECT_GT(summary.low_mem_fraction, 0.3);
  EXPECT_LT(summary.low_mem_fraction, 0.95);
  EXPECT_GT(summary.high_mem_class_mb, summary.low_mem_class_mb);
  // The representative classes bracket the paper's 100 MB / 700 MB picks.
  EXPECT_LT(summary.low_mem_class_mb, 300.0);
  EXPECT_GT(summary.high_mem_class_mb, 300.0);
}

TEST(Bitbrains, HeavyTailedMemory) {
  BitbrainsTraceModel model;
  const auto summary = BitbrainsTraceModel::summarize(model.sample_population());
  EXPECT_GT(summary.mem_mean_mb, summary.mem_p50_mb);  // right-skewed
  EXPECT_GT(summary.mem_p90_mb, 2.0 * summary.mem_p50_mb);
}

TEST(Bitbrains, CpuUtilizationBounded) {
  BitbrainsTraceModel model{BitbrainsParams{}, 5};
  for (int i = 0; i < 1000; ++i) {
    const auto vm = model.sample();
    EXPECT_GE(vm.cpu_util, 0.0);
    EXPECT_LE(vm.cpu_util, 1.0);
    EXPECT_GT(vm.mem_mb, 0.0);
  }
}

TEST(Bitbrains, EmptySummaryThrows) {
  EXPECT_THROW(BitbrainsTraceModel::summarize({}), ModelError);
}

}  // namespace
}  // namespace ntserv::workload
