// Tests for the performance kernel: event-skipping equivalence against
// the cycle-by-cycle path, and thread-count-independent sweep results.
#include <gtest/gtest.h>

#include <atomic>

#include "ntserv/ntserv.hpp"

namespace ntserv {
namespace {

sim::ClusterConfig cluster_config(bool event_skipping, Hertz clock = ghz(2.0),
                                  bool wakeup_list = true) {
  sim::ClusterConfig cc;
  cc.core_clock = clock;
  cc.event_skipping = event_skipping;
  cc.core.wakeup_list = wakeup_list;
  return cc;
}

std::vector<std::unique_ptr<cpu::UopSource>> sources_for(
    const workload::WorkloadProfile& profile, std::uint64_t seed) {
  std::vector<std::unique_ptr<cpu::UopSource>> sources;
  for (int c = 0; c < 4; ++c) {
    sources.push_back(std::make_unique<workload::SyntheticWorkload>(
        profile, seed + static_cast<std::uint64_t>(c) * 7919,
        workload::AddressSpace::for_core(static_cast<CoreId>(c))));
  }
  return sources;
}

void expect_identical_metrics(sim::Cluster& ticked, sim::Cluster& skipping) {
  ASSERT_EQ(ticked.now(), skipping.now());
  EXPECT_EQ(ticked.total_committed(), skipping.total_committed());

  const auto a = ticked.metrics();
  const auto b = skipping.metrics();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.uipc, b.uipc);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.issue_utilization, b.issue_utilization);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);

  EXPECT_EQ(a.memory.l1i_misses, b.memory.l1i_misses);
  EXPECT_EQ(a.memory.l1d_misses, b.memory.l1d_misses);
  EXPECT_EQ(a.memory.llc_hits, b.memory.llc_hits);
  EXPECT_EQ(a.memory.llc_misses, b.memory.llc_misses);
  EXPECT_EQ(a.memory.llc_writebacks, b.memory.llc_writebacks);
  EXPECT_EQ(a.memory.xbar_flits, b.memory.xbar_flits);
  EXPECT_EQ(a.memory.rejected, b.memory.rejected);
  EXPECT_EQ(a.memory.prefetches_issued, b.memory.prefetches_issued);

  EXPECT_EQ(a.dram.reads, b.dram.reads);
  EXPECT_EQ(a.dram.writes, b.dram.writes);
  EXPECT_EQ(a.dram.refreshes, b.dram.refreshes);
  EXPECT_EQ(a.dram.forwarded_reads, b.dram.forwarded_reads);
  EXPECT_DOUBLE_EQ(a.dram.row_hit_rate, b.dram.row_hit_rate);
  EXPECT_DOUBLE_EQ(a.dram.avg_read_latency_cycles, b.dram.avg_read_latency_cycles);

  for (int c = 0; c < 4; ++c) {
    const auto& sa = ticked.core(c).stats();
    const auto& sb = skipping.core(c).stats();
    EXPECT_EQ(sa.cycles, sb.cycles) << "core " << c;
    EXPECT_EQ(sa.committed_total, sb.committed_total) << "core " << c;
    EXPECT_EQ(sa.committed_user, sb.committed_user) << "core " << c;
    EXPECT_EQ(sa.issued, sb.issued) << "core " << c;
    EXPECT_EQ(sa.loads, sb.loads) << "core " << c;
    EXPECT_EQ(sa.stores, sb.stores) << "core " << c;
    EXPECT_EQ(sa.branches, sb.branches) << "core " << c;
    EXPECT_EQ(sa.branch_mispredicts, sb.branch_mispredicts) << "core " << c;
    EXPECT_EQ(sa.load_forwards, sb.load_forwards) << "core " << c;
    EXPECT_EQ(sa.fetch_stall_cycles, sb.fetch_stall_cycles) << "core " << c;
    EXPECT_EQ(sa.rob_full_cycles, sb.rob_full_cycles) << "core " << c;
  }
}

void run_equivalence(const workload::WorkloadProfile& profile, Hertz clock) {
  // Full scheduler x kernel matrix against one reference: the polled
  // issue scan without event skipping (the original cycle-by-cycle path).
  sim::Cluster reference{cluster_config(false, clock, false), sources_for(profile, 9001)};
  sim::Cluster polled_skipping{cluster_config(true, clock, false), sources_for(profile, 9001)};
  sim::Cluster wakeup_ticked{cluster_config(false, clock, true), sources_for(profile, 9001)};
  sim::Cluster wakeup_skipping{cluster_config(true, clock, true), sources_for(profile, 9001)};
  const auto each = [&](auto&& fn) {
    fn(polled_skipping);
    fn(wakeup_ticked);
    fn(wakeup_skipping);
  };

  reference.run(150'000);
  each([&](sim::Cluster& c) {
    c.run(150'000);
    expect_identical_metrics(reference, c);
  });

  // And again over a measurement window after a stats reset, the way the
  // SMARTS sampler drives the cluster.
  reference.reset_stats();
  reference.run(60'000);
  each([&](sim::Cluster& c) {
    c.reset_stats();
    c.run(60'000);
    expect_identical_metrics(reference, c);
  });
}

TEST(EventSkipping, MatchesTickedPathOnMemoryBoundWorkload) {
  // Data Serving is the paper's memory-bound outlier: high MPKI, low IPC,
  // long all-core DRAM stalls — exactly where the kernel skips.
  run_equivalence(workload::WorkloadProfile::data_serving(), ghz(2.0));
}

TEST(EventSkipping, MatchesTickedPathOnComputeBoundWorkload) {
  run_equivalence(workload::WorkloadProfile::vm_banking_low_mem(), ghz(2.0));
}

TEST(EventSkipping, MatchesTickedPathAtLowFrequency) {
  // Low core clock flips the core/memory cycle ratio above one, stressing
  // the clock-domain conversion in the skip-length computation.
  run_equivalence(workload::WorkloadProfile::media_streaming(), mhz(400));
}

TEST(EventSkipping, SkipsCyclesOnMemoryBoundWorkload) {
  sim::Cluster cl{cluster_config(true),
                  sources_for(workload::WorkloadProfile::data_serving(), 77)};
  cl.run(150'000);
  EXPECT_GT(cl.skipped_cycles(), 0u);
}

TEST(EventSkipping, RunUntilCommittedAgrees) {
  sim::Cluster reference{cluster_config(false, ghz(2.0), false),
                         sources_for(workload::WorkloadProfile::web_search(), 5)};
  reference.run_until_committed(100'000, 1'000'000);
  for (const bool skipping : {false, true}) {
    for (const bool wakeup : {false, true}) {
      if (!skipping && !wakeup) continue;  // the reference itself
      sim::Cluster c{cluster_config(skipping, ghz(2.0), wakeup),
                     sources_for(workload::WorkloadProfile::web_search(), 5)};
      c.run_until_committed(100'000, 1'000'000);
      EXPECT_EQ(reference.now(), c.now()) << "skipping=" << skipping << " wakeup=" << wakeup;
      EXPECT_EQ(reference.total_committed(), c.total_committed())
          << "skipping=" << skipping << " wakeup=" << wakeup;
    }
  }
}

TEST(WakeupList, CalendarFeedsSkipKernelAndStaysMetricIdentical) {
  // The wake calendar feeds next_event_cycle() the exact issue-side wake
  // cycle, so the skip kernel must still find (and take) quiet windows
  // under the wakeup scheduler. Individual hints are tighter than the
  // polled path's conservative bounds, but aggregate skip totals are
  // path-dependent (a longer skip changes where later hints are
  // evaluated), so only skip *activity* and metric identity are
  // invariants worth asserting — not a skip-count ordering.
  sim::Cluster polled{cluster_config(true, ghz(2.0), false),
                      sources_for(workload::WorkloadProfile::data_serving(), 77)};
  sim::Cluster wakeup{cluster_config(true, ghz(2.0), true),
                      sources_for(workload::WorkloadProfile::data_serving(), 77)};
  polled.run(150'000);
  wakeup.run(150'000);
  EXPECT_GT(wakeup.skipped_cycles(), 0u);
  expect_identical_metrics(polled, wakeup);
}

TEST(SweepDeterminism, SameResultsForOneAndManyThreads) {
  power::ServerPowerModel platform{
      tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, power::ChipConfig{}};
  sim::ServerSimConfig cfg;
  cfg.smarts.warm_instructions = 100'000;
  cfg.smarts.warmup = 5'000;
  cfg.smarts.measure = 10'000;
  cfg.smarts.min_samples = 2;
  cfg.smarts.max_samples = 3;
  sim::ServerSimulator simulator{workload::WorkloadProfile::web_search(), platform, cfg};

  const auto grid = sim::frequency_grid(mhz(400), ghz(2.0), 5);
  const auto serial = simulator.sweep(grid, 1);
  const auto parallel = simulator.sweep(grid, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].uips, parallel[i].uips) << "point " << i;
    EXPECT_DOUBLE_EQ(serial[i].uipc_cluster, parallel[i].uipc_cluster) << "point " << i;
    EXPECT_DOUBLE_EQ(serial[i].power.server().value(), parallel[i].power.server().value())
        << "point " << i;
    EXPECT_DOUBLE_EQ(serial[i].eff_server, parallel[i].eff_server) << "point " << i;
    EXPECT_EQ(serial[i].sampling.samples, parallel[i].sampling.samples) << "point " << i;
  }
}

TEST(SweepDeterminism, ThreadPoolRunsAllTasks) {
  sim::ThreadPool pool{3};
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace ntserv
