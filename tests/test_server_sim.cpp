#include <gtest/gtest.h>

#include "sim/server_sim.hpp"
#include "tech/technology.hpp"

namespace ntserv::sim {
namespace {

ServerSimConfig fast_config() {
  ServerSimConfig cfg;
  cfg.smarts.warm_instructions = 200'000;
  cfg.smarts.warmup = 10'000;
  cfg.smarts.measure = 15'000;
  cfg.smarts.min_samples = 3;
  cfg.smarts.max_samples = 5;
  return cfg;
}

ServerSimulator make_sim(workload::WorkloadProfile profile =
                             workload::WorkloadProfile::web_search()) {
  power::ServerPowerModel platform{
      tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, power::ChipConfig{}};
  return ServerSimulator{std::move(profile), std::move(platform), fast_config()};
}

TEST(ServerSim, EvaluateProducesConsistentResult) {
  const auto sim = make_sim();
  const auto r = sim.evaluate(ghz(1.0));
  EXPECT_GT(r.uips, 0.0);
  EXPECT_GT(r.uipc_cluster, 0.0);
  EXPECT_NEAR(r.uips, r.uipc_cluster * 1e9 * 9.0, r.uips * 1e-9);
  EXPECT_GT(r.power.server().value(), r.power.soc().value());
  EXPECT_GT(r.power.soc().value(), r.power.cores().value());
  // Efficiency ordering follows power-scope nesting.
  EXPECT_GT(r.eff_cores, r.eff_soc);
  EXPECT_GT(r.eff_soc, r.eff_server);
  EXPECT_NEAR(r.vdd.value(), 0.8, 0.05);
}

TEST(ServerSim, ActivityVectorBounded) {
  const auto sim = make_sim();
  const auto r = sim.evaluate(ghz(1.5));
  EXPECT_GE(r.activity.core_activity, sim.config().activity_floor);
  EXPECT_LE(r.activity.core_activity, 1.0);
  EXPECT_GT(r.activity.llc_reads_per_s, 0.0);
  EXPECT_GT(r.activity.dram_read_bw, 0.0);
  // Chip bandwidth capped at the channel peak (4ch x 1.6GT/s x 8B).
  EXPECT_LE(r.activity.dram_read_bw + r.activity.dram_write_bw, 51.3e9);
}

TEST(ServerSim, ThroughputRisesSublinearlyWithFrequency) {
  const auto sim = make_sim(workload::WorkloadProfile::data_serving());
  const auto lo = sim.evaluate(mhz(500));
  const auto hi = sim.evaluate(ghz(2.0));
  EXPECT_GT(hi.uips, lo.uips);                 // faster clock -> more work
  EXPECT_LT(hi.uips, lo.uips * 4.0);           // but sub-linear (memory-bound)
  EXPECT_GT(hi.uips, lo.uips * 1.2);
}

TEST(ServerSim, VmThroughputNearlyLinear) {
  const auto sim = make_sim(workload::WorkloadProfile::vm_banking_low_mem());
  const auto lo = sim.evaluate(mhz(500));
  const auto hi = sim.evaluate(ghz(2.0));
  // CPU-bound: scaling well above the scale-out apps'.
  EXPECT_GT(hi.uips / lo.uips, 2.4);
}

TEST(ServerSim, InfeasibleFrequencyThrows) {
  const auto sim = make_sim();
  EXPECT_THROW((void)sim.evaluate(ghz(10.0)), ModelError);
}

TEST(ServerSim, SweepReturnsAllPoints) {
  const auto sim = make_sim();
  const auto grid = frequency_grid(mhz(400), ghz(1.6), 4);
  const auto points = sim.sweep(grid);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(points[i].frequency.value(), grid[i].value());
  }
}

TEST(ServerSim, DeterministicForSeed) {
  const auto sim = make_sim();
  const auto a = sim.evaluate(ghz(1.0));
  const auto b = sim.evaluate(ghz(1.0));
  EXPECT_DOUBLE_EQ(a.uips, b.uips);
  EXPECT_DOUBLE_EQ(a.power.server().value(), b.power.server().value());
}

TEST(ServerSim, FrequencyGridHelper) {
  const auto grid = frequency_grid(ghz(0.2), ghz(2.0), 10);
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(in_ghz(grid.front()), 0.2);
  EXPECT_DOUBLE_EQ(in_ghz(grid.back()), 2.0);
  EXPECT_THROW((void)frequency_grid(ghz(1.0), ghz(0.5), 4), ModelError);
  EXPECT_THROW((void)frequency_grid(ghz(0.5), ghz(1.0), 1), ModelError);
}

}  // namespace
}  // namespace ntserv::sim
