#include <gtest/gtest.h>

#include <set>

#include "dc/scenario.hpp"
#include "dse/dse.hpp"
#include "power/server_power.hpp"
#include "sim/server_sim.hpp"

namespace ntserv::dc {
namespace {

TEST(Scenario, RegistryEntriesAreUniqueAndExpandable) {
  const auto all = Scenario::registry();
  ASSERT_GE(all.size(), 6u);
  std::set<std::string> names;
  std::set<ArrivalKind> kinds;
  std::set<BalancePolicy> policies;
  for (const auto& s : all) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
    kinds.insert(s.arrival.kind);
    policies.insert(s.policy);
    // Every entry must expand into a valid runnable configuration.
    EXPECT_NO_THROW(s.fleet_config(ghz(2.0)).validate()) << s.name;
  }
  // The catalog exercises every arrival family and every policy.
  EXPECT_EQ(kinds.size(), 5u);
  EXPECT_EQ(policies.size(), 4u);
}

TEST(Scenario, LookupByName) {
  const auto s = Scenario::by_name("websearch-poisson-light");
  EXPECT_EQ(s.workload, "Web Search");
  EXPECT_THROW((void)Scenario::by_name("nonexistent"), ModelError);
}

TEST(Scenario, RateForLoadScalesLinearly) {
  const double r1 = rate_for_load(0.5, 2, 4, 8'000);
  EXPECT_NEAR(rate_for_load(1.0, 2, 4, 8'000), 2.0 * r1, 1e-9);
  EXPECT_NEAR(rate_for_load(0.5, 4, 4, 8'000), 2.0 * r1, 1e-9);
  EXPECT_NEAR(rate_for_load(0.5, 2, 4, 16'000), 0.5 * r1, 1e-9);
  EXPECT_THROW((void)rate_for_load(0.0, 2, 4, 8'000), ModelError);
}

/// Fast scenario used by the determinism checks.
Scenario tiny_scenario() {
  Scenario s;
  s.name = "tiny";
  s.workload = "Web Search";
  s.arrival.kind = ArrivalKind::kPoisson;
  s.arrival.rate = 20'000.0;
  s.servers = 2;
  s.user_instructions_per_request = 3'000;
  s.requests = 60;
  s.warmup_requests = 8;
  s.seed = 21;
  return s;
}

TEST(Scenario, RunScenariosIsThreadCountInvariant) {
  // The satellite determinism requirement: identical results for
  // NTSERV_THREADS=1 and 4 (here passed explicitly; the env default goes
  // through the same code path).
  const std::vector<Scenario> batch{tiny_scenario(), [] {
                                      auto s = tiny_scenario();
                                      s.seed = 22;
                                      s.policy = BalancePolicy::kRoundRobin;
                                      return s;
                                    }()};
  const auto serial = run_scenarios(batch, ghz(2.0), 1);
  const auto parallel = run_scenarios(batch, ghz(2.0), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].p50.value(), parallel[i].p50.value());
    EXPECT_DOUBLE_EQ(serial[i].p95.value(), parallel[i].p95.value());
    EXPECT_DOUBLE_EQ(serial[i].p99.value(), parallel[i].p99.value());
    EXPECT_DOUBLE_EQ(serial[i].mean_latency.value(), parallel[i].mean_latency.value());
    EXPECT_EQ(serial[i].span_cycles, parallel[i].span_cycles);
  }
}

TEST(Scenario, MeasuredQosSweepIsThreadCountInvariant) {
  const auto target = qos::QosTarget::web_search();
  const std::vector<Hertz> grid{ghz(1.0), ghz(2.0)};
  const auto one = dse::sweep_measured_qos(tiny_scenario(), target, grid, 1);
  const auto four = dse::sweep_measured_qos(tiny_scenario(), target, grid, 4);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(one.points[i].p99.value(), four.points[i].p99.value());
    EXPECT_DOUBLE_EQ(one.points[i].normalized_p99, four.points[i].normalized_p99);
  }
  // Normalization anchors at the highest-frequency point: by construction
  // that point's normalized latency is baseline_p99 / qos_limit.
  const auto& base_point = one.points.back();
  EXPECT_NEAR(base_point.normalized_p99,
              target.baseline_p99.value() / target.qos_limit.value(), 1e-12);
}

TEST(Scenario, MeasuredTailMatchesAnalyticScalingWhenContentionFree) {
  // The acceptance cross-check: on a contention-free Poisson scenario the
  // measured p99 ratio must reproduce the analytic UIPS-scaling rule
  // within 10% (instructions per request are constant, paper Sec. V-A).
  Scenario s;
  s.name = "xcheck";
  s.workload = "Data Serving";
  s.arrival.kind = ArrivalKind::kPoisson;
  s.arrival.rate = rate_for_load(0.025, 2, 4, 8'000);
  s.servers = 2;
  s.user_instructions_per_request = 8'000;
  s.requests = 300;
  s.warmup_requests = 40;
  s.seed = 11;

  const auto target = qos::QosTarget::data_serving();
  const std::vector<Hertz> grid{ghz(0.5), ghz(1.0), ghz(2.0)};
  const auto measured = dse::sweep_measured_qos(s, target, grid);

  const power::ServerPowerModel platform{
      tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, power::ChipConfig{}};
  sim::ServerSimConfig cfg;
  cfg.smarts.warm_instructions = 600'000;
  cfg.smarts.warmup = 30'000;
  cfg.smarts.measure = 60'000;
  cfg.smarts.min_samples = 6;
  cfg.smarts.max_samples = 12;
  const sim::ServerSimulator simulator{workload::WorkloadProfile::data_serving(),
                                       platform, cfg};
  const auto base = simulator.evaluate(ghz(2.0));
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const auto point = simulator.evaluate(grid[i]);
    const double analytic = qos::normalized_latency(target, point.uips, base.uips);
    const double ratio = measured.points[i].normalized_p99 / analytic;
    EXPECT_NEAR(ratio, 1.0, 0.10) << "f = " << in_ghz(grid[i]) << " GHz";
    EXPECT_LT(measured.points[i].utilization, 0.15) << "scenario must stay contention-free";
  }
}

}  // namespace
}  // namespace ntserv::dc
