#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "fault/fault.hpp"

namespace ntserv::fault {
namespace {

TEST(FaultInjector, ScriptedEventsAreTimeSorted) {
  FaultConfig cfg;
  cfg.events = {{2.0e-3, 0, FaultKind::kRecover},
                {0.5e-3, 1, FaultKind::kCrash},
                {1.0e-3, 0, FaultKind::kCrash}};
  FaultInjector inj{cfg, 7, 2};
  ASSERT_EQ(inj.schedule().size(), 3u);
  EXPECT_DOUBLE_EQ(inj.schedule()[0].at_s, 0.5e-3);
  EXPECT_DOUBLE_EQ(inj.schedule()[1].at_s, 1.0e-3);
  EXPECT_DOUBLE_EQ(inj.schedule()[2].at_s, 2.0e-3);
}

TEST(FaultInjector, SimultaneousEventsBreakTiesByChipThenKind) {
  FaultConfig cfg;
  cfg.events = {{1.0e-3, 1, FaultKind::kCrash},
                {1.0e-3, 0, FaultKind::kDegrade},
                {1.0e-3, 0, FaultKind::kCrash}};
  FaultInjector inj{cfg, 7, 2};
  EXPECT_EQ(inj.schedule()[0].chip, 0);
  EXPECT_EQ(inj.schedule()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(inj.schedule()[1].chip, 0);
  EXPECT_EQ(inj.schedule()[1].kind, FaultKind::kDegrade);
  EXPECT_EQ(inj.schedule()[2].chip, 1);
}

TEST(FaultInjector, DeliveryWalksTheSchedule) {
  FaultConfig cfg;
  cfg.events = {{1.0e-3, 0, FaultKind::kCrash}, {2.0e-3, 0, FaultKind::kRecover}};
  FaultInjector inj{cfg, 1, 1};
  EXPECT_FALSE(inj.exhausted());
  EXPECT_DOUBLE_EQ(inj.next_time(), 1.0e-3);
  EXPECT_FALSE(inj.due(0.5e-3));
  EXPECT_TRUE(inj.due(1.0e-3));
  EXPECT_EQ(inj.pop().kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(inj.next_time(), 2.0e-3);
  EXPECT_EQ(inj.pop().kind, FaultKind::kRecover);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_TRUE(std::isinf(inj.next_time()));
  EXPECT_FALSE(inj.due(std::numeric_limits<double>::max()));
}

MtbfConfig small_mtbf() {
  MtbfConfig m;
  m.enabled = true;
  m.mttf = Second{1.0e-3};
  m.mttr = Second{0.2e-3};
  m.horizon = Second{10.0e-3};
  return m;
}

TEST(FaultInjector, MtbfScheduleAlternatesCrashAndRecoverPerChip) {
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector inj{cfg, 42, 3};
  ASSERT_FALSE(inj.schedule().empty());
  for (int chip = 0; chip < 3; ++chip) {
    FaultKind expect = FaultKind::kCrash;
    double last = 0.0;
    for (const auto& e : inj.schedule()) {
      if (e.chip != chip) continue;
      EXPECT_EQ(e.kind, expect);
      EXPECT_GT(e.at_s, last);
      EXPECT_LE(e.at_s, cfg.mtbf.horizon.value());
      last = e.at_s;
      expect = expect == FaultKind::kCrash ? FaultKind::kRecover : FaultKind::kCrash;
    }
  }
}

TEST(FaultInjector, MtbfScheduleIsSeedDeterministic) {
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector a{cfg, 42, 2};
  FaultInjector b{cfg, 42, 2};
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.schedule()[i].at_s, b.schedule()[i].at_s);
    EXPECT_EQ(a.schedule()[i].chip, b.schedule()[i].chip);
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
  }
  FaultInjector c{cfg, 43, 2};
  bool differs = a.schedule().size() != c.schedule().size();
  for (std::size_t i = 0; !differs && i < a.schedule().size(); ++i) {
    differs = a.schedule()[i].at_s != c.schedule()[i].at_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ChipStreamsAreIndependent) {
  // Chip k's events must not depend on how many chips the fleet has:
  // per-chip derive_seed streams, not one shared stream.
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector two{cfg, 42, 2};
  FaultInjector four{cfg, 42, 4};
  for (int chip = 0; chip < 2; ++chip) {
    std::vector<double> a, b;
    for (const auto& e : two.schedule()) {
      if (e.chip == chip) a.push_back(e.at_s);
    }
    for (const auto& e : four.schedule()) {
      if (e.chip == chip) b.push_back(e.at_s);
    }
    EXPECT_EQ(a, b);
  }
}

TEST(FaultInjector, DegradeProcessEmitsCapsAndRestores) {
  FaultConfig cfg;
  cfg.mtbf.enabled = true;
  cfg.mtbf.mttf = Second{100.0};  // effectively no crashes inside horizon
  cfg.mtbf.mttr = Second{1.0};
  cfg.mtbf.degrade_mttf = Second{0.5e-3};
  cfg.mtbf.degrade_mttr = Second{0.1e-3};
  cfg.mtbf.degrade_freq_cap = 0.6;
  cfg.mtbf.degrade_core_cap = 2;
  cfg.mtbf.horizon = Second{5.0e-3};
  FaultInjector inj{cfg, 9, 1};
  int degrades = 0, restores = 0;
  for (const auto& e : inj.schedule()) {
    if (e.kind == FaultKind::kDegrade) {
      ++degrades;
      EXPECT_DOUBLE_EQ(e.freq_cap, 0.6);
      EXPECT_EQ(e.core_cap, 2);
    }
    if (e.kind == FaultKind::kRestore) ++restores;
  }
  EXPECT_GT(degrades, 0);
  EXPECT_GE(degrades, restores);
  EXPECT_LE(degrades - restores, 1);
}

TEST(FaultConfig, AnyReflectsContent) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.any());
  cfg.events.push_back({1e-3, 0, FaultKind::kCrash});
  EXPECT_TRUE(cfg.any());
  cfg.events.clear();
  cfg.mtbf = small_mtbf();
  EXPECT_TRUE(cfg.any());
}

TEST(FaultConfig, ValidationRejectsBadConfigs) {
  {
    FaultConfig cfg;
    cfg.events.push_back({-1.0, 0, FaultKind::kCrash});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.events.push_back({1e-3, -1, FaultKind::kCrash});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.events.push_back({1e-3, 0, FaultKind::kDegrade, 1.5, 0});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.mtbf.enabled = true;  // missing mttf/mttr/horizon
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.mtbf = small_mtbf();
    cfg.mtbf.horizon = Second{0.0};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
}

}  // namespace
}  // namespace ntserv::fault
