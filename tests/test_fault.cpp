#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "dc/scenario.hpp"
#include "fault/fault.hpp"

namespace ntserv::fault {
namespace {

TEST(FaultInjector, ScriptedEventsAreTimeSorted) {
  FaultConfig cfg;
  cfg.events = {{2.0e-3, 0, FaultKind::kRecover},
                {0.5e-3, 1, FaultKind::kCrash},
                {1.0e-3, 0, FaultKind::kCrash}};
  FaultInjector inj{cfg, 7, 2};
  ASSERT_EQ(inj.schedule().size(), 3u);
  EXPECT_DOUBLE_EQ(inj.schedule()[0].at_s, 0.5e-3);
  EXPECT_DOUBLE_EQ(inj.schedule()[1].at_s, 1.0e-3);
  EXPECT_DOUBLE_EQ(inj.schedule()[2].at_s, 2.0e-3);
}

TEST(FaultInjector, SimultaneousEventsBreakTiesByChipThenKind) {
  FaultConfig cfg;
  cfg.events = {{1.0e-3, 1, FaultKind::kCrash},
                {1.0e-3, 0, FaultKind::kDegrade},
                {1.0e-3, 0, FaultKind::kCrash}};
  FaultInjector inj{cfg, 7, 2};
  EXPECT_EQ(inj.schedule()[0].chip, 0);
  EXPECT_EQ(inj.schedule()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(inj.schedule()[1].chip, 0);
  EXPECT_EQ(inj.schedule()[1].kind, FaultKind::kDegrade);
  EXPECT_EQ(inj.schedule()[2].chip, 1);
}

TEST(FaultInjector, DeliveryWalksTheSchedule) {
  FaultConfig cfg;
  cfg.events = {{1.0e-3, 0, FaultKind::kCrash}, {2.0e-3, 0, FaultKind::kRecover}};
  FaultInjector inj{cfg, 1, 1};
  EXPECT_FALSE(inj.exhausted());
  EXPECT_DOUBLE_EQ(inj.next_time(), 1.0e-3);
  EXPECT_FALSE(inj.due(0.5e-3));
  EXPECT_TRUE(inj.due(1.0e-3));
  EXPECT_EQ(inj.pop().kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(inj.next_time(), 2.0e-3);
  EXPECT_EQ(inj.pop().kind, FaultKind::kRecover);
  EXPECT_TRUE(inj.exhausted());
  EXPECT_TRUE(std::isinf(inj.next_time()));
  EXPECT_FALSE(inj.due(std::numeric_limits<double>::max()));
}

MtbfConfig small_mtbf() {
  MtbfConfig m;
  m.enabled = true;
  m.mttf = Second{1.0e-3};
  m.mttr = Second{0.2e-3};
  m.horizon = Second{10.0e-3};
  return m;
}

TEST(FaultInjector, MtbfScheduleAlternatesCrashAndRecoverPerChip) {
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector inj{cfg, 42, 3};
  ASSERT_FALSE(inj.schedule().empty());
  for (int chip = 0; chip < 3; ++chip) {
    FaultKind expect = FaultKind::kCrash;
    double last = 0.0;
    for (const auto& e : inj.schedule()) {
      if (e.chip != chip) continue;
      EXPECT_EQ(e.kind, expect);
      EXPECT_GT(e.at_s, last);
      EXPECT_LE(e.at_s, cfg.mtbf.horizon.value());
      last = e.at_s;
      expect = expect == FaultKind::kCrash ? FaultKind::kRecover : FaultKind::kCrash;
    }
  }
}

TEST(FaultInjector, MtbfScheduleIsSeedDeterministic) {
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector a{cfg, 42, 2};
  FaultInjector b{cfg, 42, 2};
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.schedule()[i].at_s, b.schedule()[i].at_s);
    EXPECT_EQ(a.schedule()[i].chip, b.schedule()[i].chip);
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
  }
  FaultInjector c{cfg, 43, 2};
  bool differs = a.schedule().size() != c.schedule().size();
  for (std::size_t i = 0; !differs && i < a.schedule().size(); ++i) {
    differs = a.schedule()[i].at_s != c.schedule()[i].at_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ChipStreamsAreIndependent) {
  // Chip k's events must not depend on how many chips the fleet has:
  // per-chip derive_seed streams, not one shared stream.
  FaultConfig cfg;
  cfg.mtbf = small_mtbf();
  FaultInjector two{cfg, 42, 2};
  FaultInjector four{cfg, 42, 4};
  for (int chip = 0; chip < 2; ++chip) {
    std::vector<double> a, b;
    for (const auto& e : two.schedule()) {
      if (e.chip == chip) a.push_back(e.at_s);
    }
    for (const auto& e : four.schedule()) {
      if (e.chip == chip) b.push_back(e.at_s);
    }
    EXPECT_EQ(a, b);
  }
}

TEST(FaultInjector, DegradeProcessEmitsCapsAndRestores) {
  FaultConfig cfg;
  cfg.mtbf.enabled = true;
  cfg.mtbf.mttf = Second{100.0};  // effectively no crashes inside horizon
  cfg.mtbf.mttr = Second{1.0};
  cfg.mtbf.degrade_mttf = Second{0.5e-3};
  cfg.mtbf.degrade_mttr = Second{0.1e-3};
  cfg.mtbf.degrade_freq_cap = 0.6;
  cfg.mtbf.degrade_core_cap = 2;
  cfg.mtbf.horizon = Second{5.0e-3};
  FaultInjector inj{cfg, 9, 1};
  int degrades = 0, restores = 0;
  for (const auto& e : inj.schedule()) {
    if (e.kind == FaultKind::kDegrade) {
      ++degrades;
      EXPECT_DOUBLE_EQ(e.freq_cap, 0.6);
      EXPECT_EQ(e.core_cap, 2);
    }
    if (e.kind == FaultKind::kRestore) ++restores;
  }
  EXPECT_GT(degrades, 0);
  EXPECT_GE(degrades, restores);
  EXPECT_LE(degrades - restores, 1);
}

FaultConfig two_rack_config() {
  FaultConfig cfg;
  cfg.domains = {{"rack0", {0, 1, 2}}, {"rack1", {3, 4, 5}}};
  return cfg;
}

TEST(FaultDomains, OutageExpandsToPerChipCrashesWithPairedRecovers) {
  FaultConfig cfg = two_rack_config();
  FaultEvent outage;
  outage.at_s = 1.0e-3;
  outage.kind = FaultKind::kDomainOutage;
  outage.domain = 0;
  outage.duration_s = 0.4e-3;
  cfg.events = {outage};
  FaultInjector inj{cfg, 7, 6};
  // Only primitive kinds survive resolution: one crash + one recover per
  // member chip, each carrying the domain index.
  ASSERT_EQ(inj.schedule().size(), 6u);
  for (int i = 0; i < 3; ++i) {
    const FaultEvent& e = inj.schedule()[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(e.at_s, 1.0e-3);
    EXPECT_EQ(e.chip, i);  // deterministic member order
    EXPECT_EQ(e.kind, FaultKind::kCrash);
    EXPECT_EQ(e.domain, 0);
  }
  for (int i = 0; i < 3; ++i) {
    const FaultEvent& e = inj.schedule()[static_cast<std::size_t>(3 + i)];
    EXPECT_DOUBLE_EQ(e.at_s, 1.4e-3);
    EXPECT_EQ(e.chip, i);
    EXPECT_EQ(e.kind, FaultKind::kRecover);
    EXPECT_EQ(e.domain, 0);
  }
}

TEST(FaultDomains, ZeroDurationOutageNeverRecovers) {
  FaultConfig cfg = two_rack_config();
  FaultEvent outage;
  outage.at_s = 1.0e-3;
  outage.kind = FaultKind::kDomainOutage;
  outage.domain = 1;
  outage.duration_s = 0.0;
  cfg.events = {outage};
  FaultInjector inj{cfg, 7, 6};
  ASSERT_EQ(inj.schedule().size(), 3u);
  for (const auto& e : inj.schedule()) {
    EXPECT_EQ(e.kind, FaultKind::kCrash);
    EXPECT_EQ(e.domain, 1);
  }
}

TEST(FaultDomains, ThermalEmergencyExpandsToDegradesWithCaps) {
  FaultConfig cfg = two_rack_config();
  FaultEvent thermal;
  thermal.at_s = 0.8e-3;
  thermal.kind = FaultKind::kThermalEmergency;
  thermal.domain = 0;
  thermal.freq_cap = 0.6;
  thermal.core_cap = 2;
  thermal.duration_s = 0.5e-3;
  cfg.events = {thermal};
  FaultInjector inj{cfg, 7, 6};
  ASSERT_EQ(inj.schedule().size(), 6u);
  int degrades = 0, restores = 0;
  for (const auto& e : inj.schedule()) {
    EXPECT_EQ(e.domain, 0);
    if (e.kind == FaultKind::kDegrade) {
      ++degrades;
      EXPECT_DOUBLE_EQ(e.at_s, 0.8e-3);
      EXPECT_DOUBLE_EQ(e.freq_cap, 0.6);
      EXPECT_EQ(e.core_cap, 2);
    } else {
      ASSERT_EQ(e.kind, FaultKind::kRestore);
      ++restores;
      EXPECT_DOUBLE_EQ(e.at_s, 1.3e-3);
    }
  }
  EXPECT_EQ(degrades, 3);
  EXPECT_EQ(restores, 3);
}

TEST(FaultDomains, CorrelatedMtbfFailsWholeDomainsTogether) {
  FaultConfig cfg = two_rack_config();
  cfg.domain_mtbf.enabled = true;
  cfg.domain_mtbf.mttf = Second{1.0e-3};
  cfg.domain_mtbf.mttr = Second{0.2e-3};
  cfg.domain_mtbf.horizon = Second{10.0e-3};
  FaultInjector inj{cfg, 42, 6};
  ASSERT_FALSE(inj.schedule().empty());
  // Every event is domain-correlated, and at any event time the whole
  // member set of the domain fires together.
  std::map<std::pair<double, int>, int> cluster;
  for (const auto& e : inj.schedule()) {
    ASSERT_GE(e.domain, 0);
    const auto& members = cfg.domains[static_cast<std::size_t>(e.domain)].members;
    EXPECT_NE(std::find(members.begin(), members.end(), e.chip), members.end());
    ++cluster[{e.at_s, e.domain}];
  }
  for (const auto& [key, count] : cluster) EXPECT_EQ(count, 3) << "t=" << key.first;
}

TEST(FaultDomains, DomainStreamsAreSeedDeterministicAndIndependent) {
  FaultConfig cfg = two_rack_config();
  cfg.domain_mtbf.enabled = true;
  cfg.domain_mtbf.mttf = Second{1.0e-3};
  cfg.domain_mtbf.mttr = Second{0.2e-3};
  cfg.domain_mtbf.horizon = Second{10.0e-3};
  FaultInjector a{cfg, 42, 6};
  FaultInjector b{cfg, 42, 6};
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.schedule()[i].at_s, b.schedule()[i].at_s);
    EXPECT_EQ(a.schedule()[i].chip, b.schedule()[i].chip);
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
  }
  // Domain 0's outage times must not depend on other domains existing:
  // per-domain derive_seed streams, not one shared stream.
  FaultConfig solo;
  solo.domains = {{"rack0", {0, 1, 2}}};
  solo.domain_mtbf = cfg.domain_mtbf;
  FaultInjector c{solo, 42, 6};
  std::vector<double> both, alone;
  for (const auto& e : a.schedule()) {
    if (e.domain == 0 && e.kind == FaultKind::kCrash) both.push_back(e.at_s);
  }
  for (const auto& e : c.schedule()) {
    if (e.domain == 0 && e.kind == FaultKind::kCrash) alone.push_back(e.at_s);
  }
  EXPECT_EQ(both, alone);
}

TEST(FaultDomains, ValidationRejectsBadDomainConfigs) {
  {
    FaultConfig cfg;  // empty member list
    cfg.domains = {{"rack0", {}}};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;  // overlapping domains
    cfg.domains = {{"rack0", {0, 1}}, {"rack1", {1, 2}}};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg = two_rack_config();  // domain index out of range
    FaultEvent e;
    e.at_s = 1e-3;
    e.kind = FaultKind::kDomainOutage;
    e.domain = 2;
    cfg.events = {e};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;  // domain-level kind without any domains
    FaultEvent e;
    e.at_s = 1e-3;
    e.kind = FaultKind::kDomainOutage;
    e.domain = 0;
    cfg.events = {e};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg = two_rack_config();  // domain_mtbf needs domains: ok
    cfg.domain_mtbf.enabled = true;      // ...but not a missing horizon
    cfg.domain_mtbf.mttf = Second{1e-3};
    cfg.domain_mtbf.mttr = Second{1e-4};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
}

TEST(FaultDomains, InjectorRejectsMembersOutsideTheFleet) {
  // Construction-time (run-context) validation: the config cannot know
  // the fleet size, the injector does.
  FaultConfig cfg;
  cfg.domains = {{"rack0", {0, 7}}};
  FaultEvent e;
  e.at_s = 1e-3;
  e.kind = FaultKind::kDomainOutage;
  e.domain = 0;
  e.duration_s = 1e-4;
  cfg.events = {e};
  EXPECT_THROW((FaultInjector{cfg, 7, 4}), ModelError);
}

TEST(FaultConfig, AnyReflectsContent) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.any());
  cfg.events.push_back({1e-3, 0, FaultKind::kCrash});
  EXPECT_TRUE(cfg.any());
  cfg.events.clear();
  cfg.mtbf = small_mtbf();
  EXPECT_TRUE(cfg.any());
}

TEST(FaultConfig, ValidationRejectsBadConfigs) {
  {
    FaultConfig cfg;
    cfg.events.push_back({-1.0, 0, FaultKind::kCrash});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.events.push_back({1e-3, -1, FaultKind::kCrash});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.events.push_back({1e-3, 0, FaultKind::kDegrade, 1.5, 0});
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.mtbf.enabled = true;  // missing mttf/mttr/horizon
    EXPECT_THROW(cfg.validate(), ModelError);
  }
  {
    FaultConfig cfg;
    cfg.mtbf = small_mtbf();
    cfg.mtbf.horizon = Second{0.0};
    EXPECT_THROW(cfg.validate(), ModelError);
  }
}

TEST(FaultDomains, RackLossScenarioIsThreadCountInvariant) {
  // The domain outage, the brownout ladder, the breakers and the
  // emergency wake all act at the epoch barrier inside one run's
  // single-threaded loop; NTSERV_THREADS only spreads independent runs
  // over a pool, so the faulted scenario is bit-identical at any width.
  const std::vector<dc::Scenario> scenarios = {dc::Scenario::by_name("rack-loss-web")};
  const auto one = dc::run_scenarios(scenarios, ghz(2.0), 1);
  const auto four = dc::run_scenarios(scenarios, ghz(2.0), 4);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(four.size(), 1u);
  const dc::FleetResult& a = one[0];
  const dc::FleetResult& b = four[0];
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.span_cycles, b.span_cycles);
  EXPECT_DOUBLE_EQ(a.p99.value(), b.p99.value());
  EXPECT_DOUBLE_EQ(a.energy.value(), b.energy.value());
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.brownout_shed, b.brownout_shed);
  EXPECT_EQ(a.brownout_epochs, b.brownout_epochs);
  EXPECT_EQ(a.brownout_stage_epochs, b.brownout_stage_epochs);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.emergency_wakes, b.emergency_wakes);
  EXPECT_EQ(a.autoscale_unparks, b.autoscale_unparks);
  EXPECT_DOUBLE_EQ(a.wake_energy.value(), b.wake_energy.value());
}

}  // namespace
}  // namespace ntserv::fault
