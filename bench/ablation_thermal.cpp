// A6 — Sec. V-B1/V-C ablation: TDP, electrothermal feedback and dark
// silicon across the frequency range.
//
// The paper claims NTC operation (a) reduces system TDP, easing thermal
// design and dark-silicon effects, and (b) leaves the server energy-bound
// rather than power/thermal-bound. This bench quantifies both with the
// electrothermal model: junction temperature and leakage fraction per
// frequency, and the number of cores that fit the 100 W budget and the
// 95 C junction limit.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — TDP, electrothermal feedback and dark silicon",
                      "Pahlevan et al., DATE'16, Sec. V-B1 & V-C (TDP discussion)");

  const tech::TechnologyModel soi{tech::TechnologyParams::fdsoi28()};
  const thermal::ThermalModel model{thermal::ThermalParams{}, soi, power::ChipConfig{}};
  const Watt uncore{23.3};  // LLC + crossbars + I/O (constant domain)
  const Watt budget{100.0};

  TextTable t({"f (GHz)", "Tj (C)", "chip W", "leak W", "leak %", "cores@100W",
               "thermal-bound?"});
  for (double g : {0.2, 0.5, 0.8, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const Hertz f = ghz(g);
    if (!soi.feasible(f)) continue;
    const auto op = model.solve(f, 1.0, 36, uncore);
    const int cores = model.dark_silicon_cores(f, 1.0, uncore, budget);
    t.add_row({TextTable::num(g, 1), TextTable::num(op.junction.value() - 273.15, 1),
               TextTable::num(op.chip_power.value(), 1),
               TextTable::num(op.leakage_power.value(), 2),
               TextTable::num(100.0 * op.leakage_power.value() / op.chip_power.value(), 1),
               std::to_string(cores), op.within_limit ? "no" : "YES"});
  }
  bench::print_table(t, "ablation_thermal");

  std::cout << "Expected: at near-threshold frequencies all 36 cores fit the budget at\n"
            << "low junction temperature (energy-bound, not thermal-bound); toward the\n"
            << "top of the range the budget darkens cores and Tj climbs.\n";
  return 0;
}
