// E5 — Fig. 5 (consolidation): multi-cluster chip servers, cross-scenario
// consolidation economics, and governor-aware dispatch.
//
// The paper's scale-out argument (Sec. II-B) puts many near-threshold
// clusters behind one server chip, and Sec. V-C argues consolidation of
// co-located services is where the energy-proportionality win compounds.
// This driver measures both at the request level on the chip-based fleet
// (dc::ChipServer):
//
//   1. Consolidation economics — two antiphase diurnal tenants co-located
//      on shared chips versus each tenant on its own dedicated fleet, at
//      *equal per-tenant p99 bounds*: the consolidated fleet needs fewer
//      chips (statistical multiplexing of the crests) and less energy.
//   2. Governor-aware dispatch — per-chip governors drift apart under
//      asymmetric load; the kGovernorAware balancer peeks at each chip's
//      pending epoch decision and steers latency-critical requests away
//      from chips mid-transition or about to descend, against the
//      least-loaded baseline on the diurnal NTC-boost scenario and the
//      interactive+batch consolidation scenario.
//
// `--smoke` runs trimmed versions of both with asserted bounds and a
// non-zero exit on failure (the CI hook): consolidation must use fewer
// chips than the dedicated fleets at equal per-tenant p99 bounds, and the
// governor-aware balancer's non-transition QoS violations must not exceed
// the least-loaded baseline's.
#include <cstring>

#include "bench_common.hpp"

using namespace ntserv;

namespace {

/// Run one scenario per balance policy in parallel (NTSERV_THREADS).
std::vector<dc::FleetResult> run_policies(const dc::Scenario& scenario,
                                          const std::vector<dc::BalancePolicy>& policies,
                                          Hertz f) {
  std::vector<dc::FleetResult> results(policies.size());
  sim::parallel_for_index(sim::ThreadPool::default_threads(), policies.size(),
                          [&](std::size_t i) {
                            dc::Scenario s = scenario;
                            s.policy = policies[i];
                            results[i] = dc::run_scenario(s, f);
                          });
  return results;
}

void print_consolidation(const dse::ConsolidationSweep& sweep,
                         const dc::Scenario& scenario) {
  std::cout << "Scenario " << sweep.scenario << " (" << scenario.description << "):\n";
  TextTable t({"fleet", "chips", "tenant", "p99 (us)", "bound (us)", "meets",
               "shed", "energy (mJ)"});
  auto add_rows = [&](const std::string& fleet, int chips, const dc::FleetResult& r,
                      const dse::ConsolidationSweep& sw) {
    for (const auto& tn : r.tenants) {
      // meets() resolves slices by name, so the sweep-table index drives
      // both the bound column and the verdict.
      std::size_t bound_idx = 0;
      for (std::size_t k = 0; k < sw.tenant_names.size(); ++k) {
        if (sw.tenant_names[k] == tn.name) bound_idx = k;
      }
      t.add_row({fleet + bench::truncated_mark(r), std::to_string(chips),
                 tn.name,
                 TextTable::num(in_us(tn.p99), 1),
                 TextTable::num(in_us(sw.tenant_bounds[bound_idx]), 1),
                 sw.meets(r, bound_idx) ? "yes" : "no", std::to_string(tn.shed),
                 TextTable::num(tn.energy.value() * 1e3, 2)});
    }
  };
  for (const auto& p : sweep.points) {
    add_rows("consolidated", p.chips, p.consolidated, sweep);
    for (std::size_t d = 0; d < p.dedicated.size(); ++d) {
      add_rows("dedicated/" + sweep.tenant_names[d], p.chips, p.dedicated[d], sweep);
    }
  }
  bench::print_table(t, "fig5_consolidation_" + sweep.scenario);
}

void print_policies(const std::string& tag, const std::vector<dc::BalancePolicy>& policies,
                    const std::vector<dc::FleetResult>& results) {
  TextTable t({"policy", "p99 (us)", "mean (us)", "viol", "trans", "steered",
               "shed", "energy (mJ)", "util"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::string(to_string(policies[i])) + bench::truncated_mark(r),
               TextTable::num(in_us(r.p99), 1),
               TextTable::num(in_us(r.mean_latency), 1),
               std::to_string(r.qos_violation_epochs), std::to_string(r.transitions),
               std::to_string(r.steered), std::to_string(r.shed),
               TextTable::num(r.energy.value() * 1e3, 2),
               TextTable::num(r.utilization, 3)});
  }
  bench::print_table(t, tag);
}

bool check(bool cond, const char* what) {
  std::cout << (cond ? "PASS" : "FAIL") << ": " << what << "\n";
  return cond;
}

int run_smoke() {
  bool ok = true;

  // 1. Consolidation economics at smoke scale: one shared chip must carry
  //    both antiphase tenants inside their p99 bounds — the dedicated
  //    fleets need one chip *each*, so consolidation halves the fleet.
  {
    dc::Scenario s = dc::Scenario::by_name("consolidated-antiphase-search");
    for (auto& tenant : s.tenants) tenant.requests = 300;
    const auto sweep = dse::sweep_consolidation(s, {1}, ghz(2.0));
    const auto& point = sweep.points.front();
    ok &= check(sweep.meets(point.consolidated, 0) && sweep.meets(point.consolidated, 1),
                "one shared chip serves both antiphase tenants within their p99 bounds");
    ok &= check(sweep.meets(point.dedicated[0], 0) && sweep.meets(point.dedicated[1], 1),
                "each dedicated fleet needs (at least) one chip of its own");
    const int consolidated = sweep.min_consolidated_chips();
    ok &= check(consolidated == 1 && consolidated < 2,
                "consolidation uses fewer chips than the dedicated fleets (1 < 1+1)");
    const double ded_energy = point.dedicated[0].energy.value() +
                              point.dedicated[1].energy.value();
    ok &= check(point.consolidated.energy.value() < ded_energy,
                "consolidated fleet energy below the dedicated fleets' sum");
  }

  // 2. Governor-aware dispatch on the diurnal NTC-boost scenario: at
  //    worst the violation count of the least-loaded baseline.
  {
    dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
    s.requests = 300;
    s.warmup_requests = 30;
    const std::vector<dc::BalancePolicy> policies{dc::BalancePolicy::kLeastLoaded,
                                                  dc::BalancePolicy::kGovernorAware};
    const auto results = run_policies(s, policies, ghz(2.0));
    const auto& ll = results[0];
    const auto& ga = results[1];
    ok &= check(!ll.truncated && !ga.truncated, "diurnal policy face-off completes");
    ok &= check(ga.qos_violation_epochs <= ll.qos_violation_epochs,
                "governor-aware non-transition QoS violations <= least-loaded");
  }

  // 3. Steering is live: the interactive+batch consolidation scenario
  //    must actually redirect latency-critical work off descending chips.
  {
    dc::Scenario s = dc::Scenario::by_name("consolidated-web-batch");
    s.tenants[0].requests = 250;
    s.tenants[1].requests = 150;
    const auto r = dc::run_scenario(s, ghz(2.0));
    ok &= check(!r.truncated && r.steered > 0,
                "governor-aware balancer steers around pending descents");
  }

  std::cout << (ok ? "SMOKE PASS" : "SMOKE FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "consolidated-web-batch");
  if (topts.any()) return bench::run_telemetry(topts);

  bench::print_header(
      "Fig. 5 (consolidation) — chip servers, consolidation economics, "
      "governor-aware dispatch",
      "Pahlevan et al., DATE'16, Sec. II-B scale-out chips + Sec. V-C consolidation");

  bool accepted = true;

  // 1. Consolidation economics: antiphase diurnal tenants, shared vs
  //    dedicated chips at equal per-tenant p99 bounds.
  {
    const dc::Scenario s = dc::Scenario::by_name("consolidated-antiphase-search");
    const auto sweep = dse::sweep_consolidation(s, {1, 2}, ghz(2.0));
    print_consolidation(sweep, s);

    const int consolidated = sweep.min_consolidated_chips();
    const int ded_day = sweep.min_dedicated_chips(0);
    const int ded_night = sweep.min_dedicated_chips(1);
    const bool fewer = consolidated > 0 && ded_day > 0 && ded_night > 0 &&
                       consolidated < ded_day + ded_night;
    std::cout << "Minimum chips at equal per-tenant p99 bounds: consolidated "
              << consolidated << " vs dedicated " << ded_day << " + " << ded_night
              << " [" << (fewer ? "PASS" : "FAIL") << "]\n";
    const auto& point = sweep.points.front();
    const double ded_energy = point.dedicated[0].energy.value() +
                              point.dedicated[1].energy.value();
    std::cout << "Energy at 1 chip: consolidated "
              << point.consolidated.energy.value() * 1e3 << " mJ vs dedicated sum "
              << ded_energy * 1e3 << " mJ ("
              << point.consolidated.energy.value() / ded_energy << "x)\n\n";
    accepted = fewer && accepted;
  }

  // 2. Governor-aware vs least-loaded (vs round-robin) on the diurnal
  //    NTC-boost scenario: per-chip boosts/releases are the descents the
  //    balancer anticipates.
  {
    dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
    const std::vector<dc::BalancePolicy> policies{dc::BalancePolicy::kRoundRobin,
                                                  dc::BalancePolicy::kLeastLoaded,
                                                  dc::BalancePolicy::kGovernorAware};
    const auto results = run_policies(s, policies, ghz(2.0));
    std::cout << "Scenario " << s.name << " (" << s.description << "), policy face-off:\n";
    print_policies("fig5_policies_" + s.name, policies, results);
    const auto& ll = results[1];
    const auto& ga = results[2];
    const bool viol_ok = ga.qos_violation_epochs <= ll.qos_violation_epochs;
    std::cout << "Acceptance: governor-aware violations " << ga.qos_violation_epochs
              << " <= least-loaded " << ll.qos_violation_epochs << " ["
              << (viol_ok ? "PASS" : "FAIL") << "]\n\n";
    accepted = viol_ok && accepted;
  }

  // 3. Interactive + batch consolidation under per-chip ondemand DVFS:
  //    steering keeps the interactive tail clear of descending chips
  //    while batch work soaks them.
  {
    dc::Scenario s = dc::Scenario::by_name("consolidated-web-batch");
    const std::vector<dc::BalancePolicy> policies{dc::BalancePolicy::kLeastLoaded,
                                                  dc::BalancePolicy::kGovernorAware};
    const auto results = run_policies(s, policies, ghz(2.0));
    std::cout << "Scenario " << s.name << " (" << s.description << "):\n";
    print_policies("fig5_policies_" + s.name, policies, results);
    TextTable t({"policy", "tenant", "p99 (us)", "mean (us)", "sla viol", "share",
                 "energy (mJ)"});
    for (std::size_t i = 0; i < policies.size(); ++i) {
      for (const auto& tn : results[i].tenants) {
        t.add_row({to_string(policies[i]), tn.name, TextTable::num(in_us(tn.p99), 1),
                   TextTable::num(in_us(tn.mean_latency), 1),
                   std::to_string(tn.sla_violations), TextTable::num(tn.busy_share, 3),
                   TextTable::num(tn.energy.value() * 1e3, 2)});
      }
    }
    bench::print_table(t, "fig5_tenants_" + s.name);
  }

  std::cout << (accepted ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL")
            << " (consolidation beats dedicated chips at equal per-tenant bounds; "
               "governor-aware dispatch at most least-loaded's violations)\n";
  return accepted ? 0 : 1;
}
