// A1 — Sec. V-C ablation: LPDDR4 (mobile DRAM) in place of DDR4.
//
// The paper argues that as the SoC's power shrinks at near-threshold
// operation, DDR4 background power dominates total server power, and that
// mobile DRAM (LPDDR4, after Malladi et al.) would raise the server's
// energy proportionality. Expectation: LPDDR4 raises server efficiency at
// every frequency, most strongly at low f, and moves the server-scope
// optimum toward lower frequency.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — LPDDR4 vs DDR4 server energy proportionality",
                      "Pahlevan et al., DATE'16, Sec. V-C (memory discussion)");

  const auto ddr4_platform = bench::default_platform();
  power::DramPowerParams lp;
  lp.energy = power::DramEnergyTable::lpddr4_1600();
  const auto lpddr4_platform = ddr4_platform.with_dram(lp);

  const auto grid = bench::paper_frequency_grid(8);
  const auto profile = workload::WorkloadProfile::data_serving();

  dse::ExplorationDriver ddr_driver{ddr4_platform, bench::bench_sim_config()};
  dse::ExplorationDriver lp_driver{lpddr4_platform, bench::bench_sim_config()};
  const auto ddr = ddr_driver.sweep(profile, grid);
  const auto lpd = lp_driver.sweep(profile, grid);

  TextTable t({"f (GHz)", "DDR4 server eff", "LPDDR4 server eff", "gain", "DDR4 mem W",
               "LPDDR4 mem W"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({TextTable::num(in_ghz(grid[i]), 2),
               TextTable::num(ddr.efficiency(i, dse::Scope::kServer) / 1e9, 3),
               TextTable::num(lpd.efficiency(i, dse::Scope::kServer) / 1e9, 3),
               TextTable::num(lpd.efficiency(i, dse::Scope::kServer) /
                                  ddr.efficiency(i, dse::Scope::kServer), 2),
               TextTable::num(ddr.points[i].power.memory().value(), 2),
               TextTable::num(lpd.points[i].power.memory().value(), 2)});
  }
  bench::print_table(t, "ablation_lpddr4");

  std::cout << "Server-scope optimum: DDR4 "
            << TextTable::num(in_ghz(ddr.optimal_frequency(dse::Scope::kServer)), 2)
            << " GHz -> LPDDR4 "
            << TextTable::num(in_ghz(lpd.optimal_frequency(dse::Scope::kServer)), 2)
            << " GHz (expected: moves left)\n";
  std::cout << "Energy proportionality (server scope): DDR4 "
            << TextTable::num(dse::energy_proportionality(ddr, dse::Scope::kServer), 3)
            << " -> LPDDR4 "
            << TextTable::num(dse::energy_proportionality(lpd, dse::Scope::kServer), 3)
            << " (expected: rises)\n";
  return 0;
}
