// E1 — Fig. 1: Vdd(f) and chip power(f) for 28nm bulk, FD-SOI and
// FD-SOI+FBB across the 0-3.5 GHz frequency range.
//
// Expected shape (paper Sec. II-C1): at any frequency the supply ordering
// is bulk > FD-SOI > FD-SOI+FBB and the power ordering likewise; the gap
// grows as the supply drops (maximum benefit in the near-threshold
// region); bulk cannot operate at 0.5 V while FD-SOI reaches ~100 MHz and
// FD-SOI+FBB exceeds 500 MHz.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Fig. 1 — A57 voltage & power model: Bulk / FD-SOI / FD-SOI+FBB",
                      "Pahlevan et al., DATE'16, Figure 1");

  const tech::TechnologyModel bulk{tech::TechnologyParams::bulk28()};
  const tech::TechnologyModel soi{tech::TechnologyParams::fdsoi28()};
  const tech::TechnologyModel fbb{tech::TechnologyParams::fdsoi28_fbb()};
  const power::ChipConfig chip;
  const double n = chip.total_cores();

  // The FBB series applies the *energy-optimal* forward bias per frequency
  // (paper Sec. II-A item 1: "operate at the best energy efficiency point
  // for a given performance target") — at low frequency the optimum is
  // little or no bias (leakage would dominate), at high frequency a strong
  // bias lowers the required Vdd.
  TextTable t({"f (MHz)", "Vdd bulk", "Vdd FD-SOI", "Vdd FBB", "Vbb*", "P bulk (W)",
               "P FD-SOI (W)", "P FBB (W)"});
  for (double mhz_pt : {100.0, 250.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 2500.0,
                        3000.0, 3500.0}) {
    const Hertz f = mhz(mhz_pt);
    auto cell = [&](const tech::TechnologyModel& m, bool voltage) -> std::string {
      if (!m.feasible(f)) return "-";
      if (voltage) return TextTable::num(m.voltage_for(f).value(), 3);
      return TextTable::num(n * m.core_power(f).value(), 1);
    };
    std::string vdd_fbb = "-", vbb = "-", p_fbb = "-";
    if (fbb.feasible(f)) {
      const auto best = tech::optimal_forward_bias(soi, f);
      vdd_fbb = TextTable::num(best.vdd.value(), 3);
      vbb = TextTable::num(best.body_bias.value(), 2);
      p_fbb = TextTable::num(n * best.power.value(), 1);
    }
    t.add_row({TextTable::num(mhz_pt, 0), cell(bulk, true), cell(soi, true), vdd_fbb, vbb,
               cell(bulk, false), cell(soi, false), p_fbb});
  }
  bench::print_table(t, "fig1");

  std::cout << "Anchor checks (paper Sec. II):\n"
            << "  f @ 0.5 V      : bulk " << in_mhz(bulk.frequency_at(volts(0.5)))
            << " MHz, FD-SOI " << in_mhz(soi.frequency_at(volts(0.5))) << " MHz, FBB "
            << in_mhz(fbb.frequency_at(volts(0.5))) << " MHz\n"
            << "  max frequency  : bulk " << in_ghz(bulk.max_frequency()) << " GHz, FD-SOI "
            << in_ghz(soi.max_frequency()) << " GHz, FBB " << in_ghz(fbb.max_frequency())
            << " GHz\n";
  return 0;
}
