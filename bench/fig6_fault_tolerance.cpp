// E6 — Fig. 6 (fault tolerance): availability and tail latency of serving
// fleets under injected failures (src/fault + dc resilience + ctrl
// guardband).
//
// The paper argues near-threshold fleets win by spreading load over many
// small chips; more chips means more independent failure domains, so the
// reproduction's serving layer has to show what a chip loss actually
// costs. This driver contrasts resilience postures on *identical*
// deterministic failure traces:
//
//   health-blind — no failover: a crashed chip restarts its in-flight
//                  work locally and its queue waits out the outage;
//   failover     — crash drains the victim's queue and re-dispatches
//                  in-flight losses onto healthy chips;
//   full         — failover plus per-request timeouts and p95-derived
//                  hedged requests (first completion wins).
//
// A second experiment exercises the guardband-degraded governors: after an
// error event the per-chip governor backs off FBB overdrive and runs with
// a raised operating margin (charged through the power model), relaxing
// back to nominal over rate-limited epochs. The recovery bound is
// hold + ceil(margin/step) epochs, and the margin shows up as a measured
// energy overhead against the healthy run.
//
// Expected shape (the PR's acceptance criteria): on diurnal-chipfail the
// full posture keeps p99 SLA violations strictly below the health-blind
// baseline with zero lost requests in *both* arms (nothing shed, timed
// out or stranded — the baseline pays the outage purely in tail
// latency); on ntc-guardband-web every chip returns to its pre-fault
// operating point within the analytic epoch bound at a nonzero, reported
// energy overhead.
//
// `--smoke` runs both checks with asserted bounds and a non-zero exit on
// failure (the CI hook).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "bench_common.hpp"

using namespace ntserv;

namespace {



void print_fault_sweep(const dse::FaultSweep& sweep, const dc::Scenario& scenario) {
  std::cout << "Scenario " << sweep.scenario << " (" << scenario.description << "),\n"
            << "  " << scenario.faults.events.size() << " scripted fault events, "
            << scenario.servers << " chips:\n";
  TextTable t({"arm", "p99 (us)", "viol", "deg viol", "lost", "timed out",
               "hedged", "hedge wins", "redisp", "wasted", "goodput (r/s)",
               "recovered", "ttr (us)"});
  auto add = [&](const std::string& label, const dc::FleetResult& r,
                 std::uint64_t lost) {
    t.add_row({label + bench::truncated_mark(r), TextTable::num(in_us(r.p99), 1),
               std::to_string(r.sla_violations),
               std::to_string(r.degraded_sla_violations), std::to_string(lost),
               std::to_string(r.timed_out), std::to_string(r.hedged),
               std::to_string(r.hedge_wins), std::to_string(r.redispatched),
               std::to_string(r.wasted_completions), TextTable::num(r.goodput, 0),
               r.recovered ? "yes" : "no",
               TextTable::num(in_us(r.time_to_recover), 1)});
  };
  add("healthy ref", sweep.healthy,
      sweep.healthy.shed + sweep.healthy.timed_out + sweep.healthy.in_flight);
  for (const auto& p : sweep.points) add(p.label, p.result, p.lost());
  bench::print_table(t, "fig6_fault_tolerance_" + sweep.scenario);
}

/// Last epoch record per chip (the fleet's final operating point).
std::map<int, ctrl::EpochRecord> final_epochs(const dc::FleetResult& r) {
  std::map<int, ctrl::EpochRecord> last;
  for (const auto& e : r.epochs) last[e.chip] = e;  // records are in time order
  return last;
}

/// Analytic guardband recovery bound per error event: hold epochs plus the
/// rate-limited relaxation back to zero margin.
int guardband_bound(const ctrl::GovernorConfig& g) {
  if (g.guardband_margin <= 0.0 || g.guardband_relax_step <= 0.0) return 0;
  return g.guardband_hold_epochs +
         static_cast<int>(std::ceil(g.guardband_margin / g.guardband_relax_step));
}

void print_guardband(const dc::FleetResult& faulted, const dc::FleetResult& healthy,
                     const dc::Scenario& scenario) {
  std::cout << "Scenario " << scenario.name << " (" << scenario.description << "),\n"
            << "  guardband margin " << scenario.governor.guardband_margin << ", hold "
            << scenario.governor.guardband_hold_epochs << " epochs, relax step "
            << scenario.governor.guardband_relax_step << " per epoch (bound "
            << guardband_bound(scenario.governor) << " epochs per error):\n";
  TextTable t({"run", "energy (mJ)", "gb epochs", "p99 (us)", "viol",
               "final margin", "final f (GHz)", "recovered", "ttr (us)"});
  auto add = [&](const std::string& label, const dc::FleetResult& r) {
    double final_margin = 0.0;
    double final_f = 0.0;
    for (const auto& [chip, e] : final_epochs(r)) {
      final_margin = std::max(final_margin, e.margin);
      final_f = std::max(final_f, e.decision.frequency.value() / 1e9);
    }
    t.add_row({label + bench::truncated_mark(r), TextTable::num(r.energy.value() * 1e3, 3),
               std::to_string(r.guardband_epochs), TextTable::num(in_us(r.p99), 1),
               std::to_string(r.sla_violations), TextTable::num(final_margin, 3),
               TextTable::num(final_f, 3), r.recovered ? "yes" : "no",
               TextTable::num(in_us(r.time_to_recover), 1)});
  };
  add("faulted", faulted);
  add("healthy", healthy);
  bench::print_table(t, "fig6_guardband_" + scenario.name);
  const double overhead = faulted.energy.value() - healthy.energy.value();
  std::cout << "Guardband energy overhead: " << overhead * 1e3 << " mJ ("
            << overhead / healthy.energy.value() * 100.0 << "% of healthy)\n\n";
}

bool check(bool cond, const char* what, bool& ok) {
  std::cout << (cond ? "PASS" : "FAIL") << ": " << what << "\n";
  ok = ok && cond;
  return cond;
}

/// Acceptance (a): chip crash under failover+hedging vs health-blind.
bool chipfail_acceptance(const dse::FaultSweep& sweep) {
  bool ok = true;
  const auto& blind = sweep.at("health-blind").result;
  const auto& full = sweep.at("full").result;
  check(!blind.truncated && !full.truncated, "both arms complete untruncated", ok);
  check(full.sla_violations < blind.sla_violations,
        "failover+hedging p99 SLA violations strictly below health-blind", ok);
  check(blind.shed == 0 && blind.timed_out == 0 && blind.in_flight == 0 &&
            blind.offered == blind.completed_all,
        "health-blind arm loses zero requests (pays the crash in latency)", ok);
  check(full.shed == 0 && full.timed_out == 0 && full.in_flight == 0 &&
            full.offered == full.completed_all,
        "resilient arm loses zero requests", ok);
  check(full.faults_injected == 2 && full.recovered &&
            full.time_to_recover.value() > 0.0,
        "crash+recovery injected and fleet reports a recovery time", ok);
  return ok;
}

/// Acceptance (b): guardband recovery to the pre-fault operating point.
bool guardband_acceptance(const dc::FleetResult& faulted,
                          const dc::FleetResult& healthy,
                          const dc::Scenario& scenario) {
  bool ok = true;
  const int bound = guardband_bound(scenario.governor);
  const int errors = static_cast<int>(faulted.faults_injected) / 2;  // degrade+restore pairs
  check(!faulted.truncated && !healthy.truncated, "both runs complete untruncated", ok);
  check(faulted.guardband_epochs > 0, "error events engage the guardband", ok);
  check(faulted.guardband_epochs <= errors * bound,
        "guardband epochs within the analytic hold+relax bound", ok);
  const auto last_f = final_epochs(faulted);
  const auto last_h = final_epochs(healthy);
  bool back = !last_f.empty() && last_f.size() == last_h.size();
  for (const auto& [chip, e] : last_f) {
    back = back && e.margin == 0.0 &&
           (last_h.count(chip) != 0U &&
            e.decision.frequency == last_h.at(chip).decision.frequency);
  }
  check(back, "every chip ends at zero margin and its pre-fault frequency pin", ok);
  check(faulted.energy.value() > healthy.energy.value(),
        "guardband margin costs measurable energy vs the healthy run", ok);
  return ok;
}

int run_smoke() {
  bool ok = true;
  {
    dc::Scenario s = dc::Scenario::by_name("diurnal-chipfail");
    const auto sweep =
        dse::sweep_faults(s, dse::default_resilience_arms(s), ghz(2.0));
    ok = chipfail_acceptance(sweep) && ok;
  }
  {
    dc::Scenario s = dc::Scenario::by_name("ntc-guardband-web");
    dc::Scenario healthy = s;
    healthy.faults = fault::FaultConfig{};
    const auto faulted_r = dc::run_scenario(s, ghz(2.0));
    const auto healthy_r = dc::run_scenario(healthy, ghz(2.0));
    ok = guardband_acceptance(faulted_r, healthy_r, s) && ok;
    if (ok) {
      const double overhead = faulted_r.energy.value() - healthy_r.energy.value();
      std::cout << "SMOKE PASS: guardband " << faulted_r.guardband_epochs
                << " chip-epochs, energy overhead " << overhead * 1e3 << " mJ ("
                << overhead / healthy_r.energy.value() * 100.0 << "%), ttr "
                << in_us(faulted_r.time_to_recover) << " us\n";
    } else {
      std::cout << "SMOKE FAIL\n";
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "diurnal-chipfail");
  if (topts.any()) return bench::run_telemetry(topts);

  bench::print_header(
      "Fig. 6 (fault tolerance) — availability under chip failures and "
      "guardband-degraded governors",
      "Pahlevan et al., DATE'16: many-chip NTC fleets as failure domains");

  bool accepted = true;

  // 1. Chip crash mid-diurnal-peak: the resilience-arm ladder.
  {
    dc::Scenario s = dc::Scenario::by_name("diurnal-chipfail");
    const auto sweep =
        dse::sweep_faults(s, dse::default_resilience_arms(s), ghz(2.0));
    print_fault_sweep(sweep, s);
    accepted = chipfail_acceptance(sweep) && accepted;
    std::cout << "\n";
  }

  // 2. Guardband recovery after correctable-error events on every chip.
  {
    dc::Scenario s = dc::Scenario::by_name("ntc-guardband-web");
    dc::Scenario healthy = s;
    healthy.faults = fault::FaultConfig{};
    const auto faulted_r = dc::run_scenario(s, ghz(2.0));
    const auto healthy_r = dc::run_scenario(healthy, ghz(2.0));
    print_guardband(faulted_r, healthy_r, s);
    accepted = guardband_acceptance(faulted_r, healthy_r, s) && accepted;
    std::cout << "\n";
  }

  // 3. Stochastic MTTF/MTTR soak: the crash scenario re-run under a
  //    renewal fault process instead of the scripted trace, at three
  //    seeds — availability metrics under "realistic" failure arrivals.
  {
    dc::Scenario s = dc::Scenario::by_name("diurnal-chipfail");
    s.faults.events.clear();
    s.faults.mtbf.enabled = true;
    s.faults.mtbf.mttf = Second{1.5e-3};
    s.faults.mtbf.mttr = Second{0.2e-3};
    s.faults.mtbf.horizon = Second{4e-3};
    std::cout << "Stochastic soak (MTTF 1.5ms, MTTR 0.2ms, full posture):\n";
    TextTable t({"seed", "faults", "p99 (us)", "viol", "lost", "redisp",
                 "goodput (r/s)", "recovered"});
    for (std::uint64_t seed : {27ULL, 99ULL, 1234ULL}) {
      dc::Scenario arm = s;
      arm.seed = seed;
      const auto r = dc::run_scenario(arm, ghz(2.0));
      t.add_row({std::to_string(seed) + bench::truncated_mark(r),
                 std::to_string(r.faults_injected), TextTable::num(in_us(r.p99), 1),
                 std::to_string(r.sla_violations),
                 std::to_string(r.shed + r.timed_out + r.in_flight),
                 std::to_string(r.redispatched), TextTable::num(r.goodput, 0),
                 r.recovered ? "yes" : "no"});
    }
    bench::print_table(t, "fig6_fault_tolerance_soak");
  }

  std::cout << (accepted ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL")
            << " (chipfail: resilient strictly fewer violations at zero loss; "
               "guardband: bounded recovery at measured overhead)\n";
  return accepted ? 0 : 1;
}
