// A5 — design-choice ablation: the next-line prefetcher.
//
// DESIGN.md calls out the sequential next-line prefetcher (I-side always-on,
// D-side stream-gated) as a modeling decision: media streaming's bandwidth
// behaviour depends on it, while random-access workloads must not be hurt by
// useless prefetch traffic. This bench quantifies both.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — next-line prefetcher on/off",
                      "ntserv design choice (DESIGN.md Sec. 5; supports Fig. 3 shapes)");

  const auto platform = bench::default_platform();
  const auto grid = std::vector<Hertz>{mhz(500), ghz(1.0), ghz(2.0)};

  TextTable t({"workload", "f (GHz)", "UIPS pf-on (G)", "UIPS pf-off (G)", "speedup",
               "BW on (GB/s)", "BW off (GB/s)"});
  for (const auto& profile : {workload::WorkloadProfile::media_streaming(),
                              workload::WorkloadProfile::data_serving()}) {
    sim::ServerSimConfig on_cfg = bench::bench_sim_config();
    sim::ServerSimConfig off_cfg = on_cfg;
    off_cfg.cluster.hierarchy.nextline_prefetch = false;
    sim::ServerSimulator on{profile, platform, on_cfg};
    sim::ServerSimulator off{profile, platform, off_cfg};
    for (Hertz f : grid) {
      const auto a = on.evaluate(f);
      const auto b = off.evaluate(f);
      t.add_row({profile.name, TextTable::num(in_ghz(f), 1),
                 TextTable::num(a.uips / 1e9, 1), TextTable::num(b.uips / 1e9, 1),
                 TextTable::num(a.uips / b.uips, 2) + "x",
                 TextTable::num((a.activity.dram_read_bw + a.activity.dram_write_bw) / 1e9, 1),
                 TextTable::num((b.activity.dram_read_bw + b.activity.dram_write_bw) / 1e9, 1)});
    }
  }
  bench::print_table(t, "ablation_prefetch");
  std::cout << "(expected: large gain for the streaming workload, no loss for the\n"
            << " random-access one)\n";
  return 0;
}
