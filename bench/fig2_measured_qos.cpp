// E3b — Fig. 2 from *measured* request latencies: the request-level
// serving layer (src/dc) drives open-loop Poisson traffic through fleets
// of simulated clusters, measures the 99th-percentile latency of completed
// requests at each frequency, and normalizes it against each application's
// QoS limit — the same curves as bench/fig2_qos_latency, but produced by
// requests actually queueing and being served rather than by the analytic
// UIPS-scaling rule.
//
// Expected shape: on the contention-free scenarios the measured curves
// track the analytic ones within ~10% (instructions per request are
// constant, so the latency ratio is the throughput ratio); the contended
// scenario shows what the analytic rule cannot — the tail blowing up once
// the service rate falls below the arrival rate at low frequency.
#include "bench_common.hpp"

using namespace ntserv;

namespace {

/// Contention-free serving scenario for one workload (the measured
/// counterpart of the analytic Fig. 2 series).
dc::Scenario light_scenario(const std::string& workload, std::uint64_t seed) {
  dc::Scenario s;
  s.name = "light:" + workload;
  s.workload = workload;
  s.arrival.kind = dc::ArrivalKind::kPoisson;
  // Light enough that queueing contributes < a few percent to p99 even at
  // the 0.2 GHz end of the sweep, where service is ~5x slower.
  const int cores = sim::ClusterConfig{}.hierarchy.cores;
  s.arrival.rate = dc::rate_for_load(0.015, 2, cores, 8'000);
  s.policy = dc::BalancePolicy::kLeastLoaded;
  s.servers = 2;
  s.user_instructions_per_request = 8'000;
  s.requests = 300;
  s.warmup_requests = 40;
  s.seed = seed;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "websearch-poisson-light");
  if (topts.any()) return bench::run_telemetry(topts);
  bench::print_header("Fig. 2 (measured) — p99 from simulated requests vs core frequency",
                      "Pahlevan et al., DATE'16, Figure 2 via request-level serving");

  const auto platform = bench::default_platform();
  // Coarser grid than the analytic driver: every point is a full fleet
  // simulation (hundreds of requests), not one SMARTS sample.
  const auto grid = bench::paper_frequency_grid(6);
  // Better-converged analytic reference than the default bench config:
  // the cross-check compares p99 *ratios*, so sampling noise in the UIPS
  // curve shows up directly as spurious delta.
  auto sim_config = bench::bench_sim_config();
  sim_config.smarts.warmup = 30'000;
  sim_config.smarts.measure = 60'000;
  sim_config.smarts.min_samples = 6;
  sim_config.smarts.max_samples = 12;
  dse::ExplorationDriver driver{platform, sim_config};

  const auto targets = qos::QosTarget::scale_out_suite();
  const auto profiles = workload::WorkloadProfile::scale_out_suite();

  // Analytic reference sweeps (UIPS scaling), all (workload, f) in one pool.
  const auto analytic = driver.sweep_all(profiles, grid);

  TextTable t({"f (GHz)", "workload", "p99 (us)", "measured norm.", "analytic norm.",
               "delta %", "util"});
  std::cout << "Measured vs analytic normalized p99 (contention-free Poisson):\n";
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    const auto scenario = light_scenario(profiles[w].name, 11 + w);
    const auto measured = dse::sweep_measured_qos(scenario, targets[w], grid);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double analytic_norm = qos::normalized_latency(
          targets[w], analytic[w].points[i].uips, analytic[w].baseline_uips());
      const auto& p = measured.points[i];
      const double delta =
          analytic_norm > 0.0 ? (p.normalized_p99 / analytic_norm - 1.0) * 100.0 : 0.0;
      t.add_row({TextTable::num(in_ghz(grid[i]), 2), profiles[w].name,
                 TextTable::num(in_us(p.p99), 1), TextTable::num(p.normalized_p99, 3),
                 TextTable::num(analytic_norm, 3), TextTable::num(delta, 1),
                 TextTable::num(p.utilization, 3)});
    }
  }
  bench::print_table(t, "fig2_measured");

  // What the analytic rule cannot show: a contended fleet saturating as
  // frequency drops (service rate < arrival rate -> queueing tail).
  std::cout << "Contended scenario (" << "websearch-poisson-heavy"
            << "): measured tail vs frequency:\n";
  const auto heavy = dc::Scenario::by_name("websearch-poisson-heavy");
  const auto heavy_sweep =
      dse::sweep_measured_qos(heavy, qos::QosTarget::web_search(), grid);
  TextTable h({"f (GHz)", "p50 (us)", "p95 (us)", "p99 (us)", "norm. p99", "util",
               "saturated"});
  for (const auto& p : heavy_sweep.points) {
    h.add_row({TextTable::num(in_ghz(p.frequency), 2), TextTable::num(in_us(p.p50), 1),
               TextTable::num(in_us(p.p95), 1), TextTable::num(in_us(p.p99), 1),
               TextTable::num(p.normalized_p99, 3), TextTable::num(p.utilization, 3),
               p.truncated ? "yes" : "no"});
  }
  bench::print_table(h, "fig2_measured_heavy");

  // Policy face-off at the serving fleet's efficiency-relevant frequencies.
  // The offered/admitted/shed counters make saturation runs diagnosable:
  // a scenario that sheds 20% at a healthy tail reads very differently
  // from one that truncates with an unbounded queue.
  std::cout << "Scenario catalog at 2 GHz (policy / arrival / control coverage):\n";
  const auto catalog = dc::Scenario::registry();
  const auto results = dc::run_scenarios(catalog, ghz(2.0));
  TextTable c({"scenario", "policy", "arrivals", "p99 (us)", "mean (us)", "util",
               "offered", "shed %", "retries", "governor", "active frac"});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    std::string fracs;
    for (double a : results[i].server_active_fraction) {
      if (!fracs.empty()) fracs += " ";
      fracs += TextTable::num(a, 2);
    }
    c.add_row({catalog[i].name, to_string(catalog[i].policy),
               to_string(catalog[i].arrival.kind), TextTable::num(in_us(results[i].p99), 1),
               TextTable::num(in_us(results[i].mean_latency), 1),
               TextTable::num(results[i].utilization, 3),
               std::to_string(results[i].offered),
               TextTable::num(results[i].shed_rate * 100.0, 1),
               std::to_string(results[i].retries), to_string(catalog[i].governor.kind),
               fracs});
  }
  bench::print_table(c, "fig2_measured_catalog");
  return 0;
}
