#!/usr/bin/env bash
# Run the perf microbench suite and archive the results as
# BENCH_<date>.json (google-benchmark JSON), so the perf trajectory of
# the simulator is tracked PR over PR.
#
# Usage: bench/run_bench.sh [build_dir] [out_dir]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
bin="${build_dir}/bench/perf_microbench"

if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"
out="${out_dir}/BENCH_$(date +%Y-%m-%d).json"

"${bin}" \
  --benchmark_format=json \
  --benchmark_repetitions="${NTSERV_BENCH_REPS:-1}" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json

echo "wrote ${out}"
