#!/usr/bin/env bash
# Run the perf microbench suite and archive the results as
# BENCH_<date>.json (google-benchmark JSON), so the perf trajectory of
# the simulator is tracked PR over PR.
#
# Archived runs are pinned for PR-over-PR comparability:
#   * NTSERV_THREADS=1 — sweep fan-out width must not depend on the host
#     (results are bit-identical anyway, but wall-clock is not);
#   * --benchmark_min_time is pinned (NTSERV_BENCH_MIN_TIME, seconds) so
#     iteration counts do not float with machine speed.
# Compare the two newest archives with bench/compare_bench.py.
#
# Usage: bench/run_bench.sh [build_dir] [out_dir]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
bin="${build_dir}/bench/perf_microbench"

if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"
# Same-day archives auto-increment an "rN" suffix (BENCH_<date>.json,
# then BENCH_<date>r2.json, ...) so a second run never overwrites the
# first; NTSERV_BENCH_TAG still overrides the suffix explicitly. The
# suffix must sort lexicographically after ".json" strips, which plain
# alphanumerics do.
stamp="$(date +%Y-%m-%d)"
if [[ -n "${NTSERV_BENCH_TAG:-}" ]]; then
  out="${out_dir}/BENCH_${stamp}${NTSERV_BENCH_TAG}.json"
else
  out="${out_dir}/BENCH_${stamp}.json"
  n=2
  while [[ -e "${out}" ]]; do
    out="${out_dir}/BENCH_${stamp}r${n}.json"
    n=$((n + 1))
  done
fi

# Stamp the archive with what produced it: the commit and the scheduler
# wakeup-list mode land in the JSON "context" object, so a diff of two
# archives can say *which builds* it is comparing (compare_bench.py
# prints these labels).
git_sha="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
wakeup_mode="${NTSERV_WAKEUP_LIST:-1}"
# Self-profiling (src/obs phase timers) is on by default: the flag lands
# in the archive's context, the sweep-point/barrier wall costs surface as
# per-benchmark counters, and the phase table prints to stderr after the
# run. Set NTSERV_BENCH_PHASE_TIMERS=0 to switch it off.
phase_timers="${NTSERV_BENCH_PHASE_TIMERS:-1}"

NTSERV_THREADS=1 NTSERV_BENCH_PHASE_TIMERS="${phase_timers}" "${bin}" \
  --benchmark_format=json \
  --benchmark_min_time="${NTSERV_BENCH_MIN_TIME:-0.25}" \
  --benchmark_repetitions="${NTSERV_BENCH_REPS:-1}" \
  --benchmark_context=git_sha="${git_sha}" \
  --benchmark_context=wakeup_list="${wakeup_mode}" \
  --benchmark_context=phase_timers="${phase_timers}" \
  --benchmark_out="${out}" \
  --benchmark_out_format=json

echo "wrote ${out}"
