#!/usr/bin/env python3
"""Diff the two newest bench/results/BENCH_*.json archives.

Prints a per-benchmark table of real-time deltas between the previous and
the newest google-benchmark JSON archive written by bench/run_bench.sh.
Intended as a non-gating trend report (CI runs it when at least two
archives exist); it always exits 0 unless the files are unreadable.

Usage: bench/compare_bench.py [results_dir]   (default: bench/results)
"""

import glob
import json
import os
import sys


def load_benchmarks(path):
    """Map benchmark name -> (real_time, time_unit) for plain iterations."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip repetition aggregates (_mean/_median/_stddev rows).
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "bench/results"
    archives = sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))
    if len(archives) < 2:
        print(f"compare_bench: fewer than two archives in {results_dir}; nothing to diff")
        return 0

    old_path, new_path = archives[-2], archives[-1]
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    print(f"compare_bench: {os.path.basename(old_path)} -> {os.path.basename(new_path)}")

    name_w = max((len(n) for n in new), default=4)
    print(f"{'benchmark':<{name_w}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    for name in sorted(new):
        t_new, unit = new[name]
        if name not in old:
            print(f"{name:<{name_w}}  {'—':>12}  {t_new:>10.1f}{unit}  {'new':>8}")
            continue
        t_old, old_unit = old[name]
        if old_unit != unit or t_old == 0.0:
            print(f"{name:<{name_w}}  {t_old:>10.1f}{old_unit}  {t_new:>10.1f}{unit}  {'n/a':>8}")
            continue
        delta = (t_new - t_old) / t_old * 100.0
        print(f"{name:<{name_w}}  {t_old:>10.1f}{unit}  {t_new:>10.1f}{unit}  {delta:>+7.1f}%")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{name_w}}  (removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
