#!/usr/bin/env python3
"""Diff the two newest bench/results/BENCH_*.json archives.

Prints a per-benchmark table of real-time deltas between the previous and
the newest google-benchmark JSON archive written by bench/run_bench.sh.
Intended as a non-gating trend report (CI runs it when at least two
archives exist); it always exits 0 unless the files are unreadable.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions), the same table is also
appended there as markdown, so the trend shows up on the workflow run
page without digging through logs.

Usage: bench/compare_bench.py [results_dir]   (default: bench/results)
"""

import glob
import json
import os
import sys


def load_benchmarks(path):
    """Map benchmark name -> (real_time, time_unit) for plain iterations."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip repetition aggregates (_mean/_median/_stddev rows).
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def run_label(path):
    """Human label for one archive from the context run_bench.sh embeds.

    google-benchmark copies --benchmark_context=key=value pairs into the
    JSON "context" object; older archives predate the stamping, so every
    key is optional.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            ctx = json.load(f).get("context", {})
    except (OSError, ValueError):
        ctx = {}
    parts = [os.path.basename(path)]
    if ctx.get("git_sha"):
        parts.append(f"sha {ctx['git_sha']}")
    if ctx.get("wakeup_list"):
        parts.append(f"wakeup_list={ctx['wakeup_list']}")
    return ", ".join(parts)


def build_rows(old, new):
    """Rows of (name, old_text, new_text, delta_text)."""
    rows = []
    for name in sorted(new):
        t_new, unit = new[name]
        if name not in old:
            rows.append((name, "—", f"{t_new:.1f}{unit}", "new"))
            continue
        t_old, old_unit = old[name]
        if old_unit != unit or t_old == 0.0:
            rows.append((name, f"{t_old:.1f}{old_unit}", f"{t_new:.1f}{unit}", "n/a"))
            continue
        delta = (t_new - t_old) / t_old * 100.0
        rows.append((name, f"{t_old:.1f}{unit}", f"{t_new:.1f}{unit}", f"{delta:+.1f}%"))
    for name in sorted(set(old) - set(new)):
        rows.append((name, "(removed)", "", ""))
    return rows


def write_step_summary(title, rows):
    """Append a markdown table to $GITHUB_STEP_SUMMARY when present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = [f"### Bench trajectory: {title}", ""]
    lines.append("| benchmark | old | new | delta |")
    lines.append("|---|---:|---:|---:|")
    for name, t_old, t_new, delta in rows:
        lines.append(f"| `{name}` | {t_old} | {t_new} | {delta} |")
    lines.append("")
    with open(summary_path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines))


def main():
    results_dir = sys.argv[1] if len(sys.argv) > 1 else "bench/results"
    archives = sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))
    if len(archives) < 2:
        print(f"compare_bench: fewer than two archives in {results_dir}; nothing to diff")
        return 0

    old_path, new_path = archives[-2], archives[-1]
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    title = f"{os.path.basename(old_path)} -> {os.path.basename(new_path)}"
    print(f"compare_bench: {title}")
    print(f"  old: {run_label(old_path)}")
    print(f"  new: {run_label(new_path)}")

    rows = build_rows(old, new)
    name_w = max((len(r[0]) for r in rows), default=4)
    print(f"{'benchmark':<{name_w}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    for name, t_old, t_new, delta in rows:
        print(f"{name:<{name_w}}  {t_old:>12}  {t_new:>12}  {delta:>8}")

    write_step_summary(title, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
