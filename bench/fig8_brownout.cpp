// E8 — Fig. 8 (graceful degradation): correlated rack-scale failures and
// overload brownout (src/fault domains + ctrl/brownout + orch emergency
// wake).
//
// The paper's scale-out fleets spread load over many small chips, but the
// chips share racks, PDUs and cooling loops: failures arrive correlated,
// not independent. This driver injects *domain*-level faults — a whole
// rack losing power, a cooling failure capping a rack's clocks — and
// contrasts graceful-degradation postures on identical traces:
//
//   off          — no brownout, no breakers, no emergency wake: the blind
//                  fleet pays the outage in latency-critical tail latency;
//   shed-only    — the brownout ladder clamped at its first rung (batch
//                  arrivals shed on sight under overload);
//   ladder       — the full ladder (shed, relaxed batch QoS, critical-
//                  only) plus per-chip circuit breakers;
//   ladder+ewake — the full ladder plus the autoscaler's emergency wake:
//                  a domain outage revives every parked chip at the same
//                  barrier, bypassing the hysteresis gate, recently-parked
//                  chips waking at the warm fraction of the latency.
//
// Expected shape (the PR's acceptance criteria): on rack-loss-web the
// ladder+ewake arm holds the latency-critical web tenant's p99 inside its
// bound with zero lost web requests while the blind arm violates the
// bound; both arms' accounting ledgers tile (offered == completed + shed
// + timed out + in flight, fleet-wide and per tenant). On
// thermal-emergency-mixed the capped fleet rides out the emergency with
// zero realized cap violations while the group-weighted split keeps the
// conventional group serving.
//
// `--smoke` runs both checks with asserted bounds and a non-zero exit on
// failure (the CI hook).
#include <cstring>

#include "bench_common.hpp"

using namespace ntserv;

namespace {

const dc::TenantResult& tenant_by_name(const dc::FleetResult& r,
                                       const std::string& name) {
  for (const auto& t : r.tenants) {
    if (t.name == name) return t;
  }
  throw ModelError("run has no tenant named '" + name + "'");
}

bool conserved(const dc::FleetResult& r) {
  bool ok = r.offered == r.completed_all + r.shed + r.timed_out + r.in_flight;
  for (const auto& t : r.tenants) {
    ok = ok && t.offered == t.completed_all + t.shed + t.timed_out + t.in_flight;
  }
  return ok;
}

void print_brownout_sweep(const dse::FaultSweep& sweep, const dc::Scenario& scenario,
                          const std::string& critical_tenant) {
  std::cout << "Scenario " << sweep.scenario << " (" << scenario.description << "),\n"
            << "  " << scenario.faults.domains.size() << " failure domains, "
            << scenario.servers << " chips, critical tenant '" << critical_tenant
            << "':\n";
  TextTable t({"arm", "crit p99 (us)", "crit viol", "crit lost", "bo shed",
               "bo epochs", "stages n/s/r/c", "trips", "brk epochs", "ewakes",
               "unparks", "capv", "lost", "goodput (r/s)"});
  auto add = [&](const std::string& label, const dc::FleetResult& r,
                 std::uint64_t lost) {
    const dc::TenantResult& crit = tenant_by_name(r, critical_tenant);
    std::string stages = "-";  // healthy reference arm runs without the ladder
    if (r.has_brownout_ladder()) {
      stages.clear();
      for (std::size_t i = 0; i < r.brownout_stage_epochs.size(); ++i) {
        stages += (i != 0U ? "/" : "") + std::to_string(r.brownout_stage_epochs[i]);
      }
    }
    t.add_row({label + bench::truncated_mark(r), TextTable::num(in_us(crit.p99), 1),
               std::to_string(crit.sla_violations),
               std::to_string(crit.shed + crit.timed_out + crit.in_flight),
               std::to_string(r.brownout_shed), std::to_string(r.brownout_epochs),
               stages, std::to_string(r.breaker_trips),
               std::to_string(r.breaker_open_epochs),
               std::to_string(r.emergency_wakes), std::to_string(r.autoscale_unparks),
               std::to_string(r.cap_violation_epochs), std::to_string(lost),
               TextTable::num(r.goodput, 0)});
  };
  add("healthy ref", sweep.healthy,
      sweep.healthy.shed + sweep.healthy.timed_out + sweep.healthy.in_flight);
  for (const auto& p : sweep.points) add(p.label, p.result, p.lost());
  bench::print_table(t, "fig8_brownout_" + sweep.scenario);
}

bool check(bool cond, const char* what, bool& ok) {
  std::cout << (cond ? "PASS" : "FAIL") << ": " << what << "\n";
  ok = ok && cond;
  return cond;
}

/// Acceptance (a): rack-scale loss — the ladder+ewake arm holds the web
/// tenant's bound with zero lost web requests; the blind arm violates it.
bool rackloss_acceptance(const dse::FaultSweep& sweep, const dc::Scenario& scenario) {
  bool ok = true;
  const auto& blind = sweep.at("off").result;
  const auto& full = sweep.at("ladder+ewake").result;
  const double bound = [&] {
    for (const auto& t : scenario.tenants) {
      if (t.name == "web") return t.qos_p99_limit.value();
    }
    return 0.0;
  }();
  const auto& blind_web = tenant_by_name(blind, "web");
  const auto& full_web = tenant_by_name(full, "web");
  check(!blind.truncated && !full.truncated, "both arms complete untruncated", ok);
  check(conserved(blind), "blind arm's ledger tiles (fleet and per tenant)", ok);
  check(conserved(full), "resilient arm's ledger tiles (fleet and per tenant)", ok);
  check(full_web.p99.value() <= bound,
        "ladder+ewake holds the web tenant's p99 inside its bound", ok);
  check(full_web.shed == 0 && full_web.timed_out == 0 && full_web.in_flight == 0,
        "ladder+ewake loses zero web requests", ok);
  check(blind_web.p99.value() > bound,
        "the blind arm violates the web tenant's p99 bound", ok);
  check(full.emergency_wakes > 0, "the domain outage triggers emergency wakes", ok);
  check(full.brownout_shed > 0 &&
            tenant_by_name(full, "web").brownout_shed == 0,
        "the ladder sheds batch work and never the critical tenant", ok);
  check(full.faults_injected >= 2, "the rack outage expands to per-chip crashes", ok);
  return ok;
}

/// Acceptance (b): thermal emergency under a group-weighted cap.
bool thermal_acceptance(const dse::FaultSweep& sweep) {
  bool ok = true;
  const auto& full = sweep.at("ladder+ewake").result;
  check(!full.truncated, "capped arm completes untruncated", ok);
  check(conserved(full), "capped arm's ledger tiles (fleet and per tenant)", ok);
  check(full.faults_injected >= 2,
        "the thermal emergency expands to per-chip degrades", ok);
  check(full.cap_clamp_epochs > 0, "the cap split clamps chip-epochs", ok);
  check(full.cap_violation_epochs == 0,
        "realized fleet power never exceeds the cap on the epoch grid", ok);
  return ok;
}

int run_smoke() {
  bool ok = true;
  {
    dc::Scenario s = dc::Scenario::by_name("rack-loss-web");
    const auto sweep = dse::sweep_faults(s, dse::default_brownout_arms(), ghz(2.0));
    ok = rackloss_acceptance(sweep, s) && ok;
  }
  {
    dc::Scenario s = dc::Scenario::by_name("thermal-emergency-mixed");
    const auto sweep = dse::sweep_faults(s, dse::default_brownout_arms(), ghz(2.0));
    ok = thermal_acceptance(sweep) && ok;
  }
  std::cout << (ok ? "SMOKE PASS" : "SMOKE FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "rack-loss-web");
  if (topts.any()) return bench::run_telemetry(topts);

  bench::print_header(
      "Fig. 8 (graceful degradation) — correlated failure domains and "
      "overload brownout",
      "Pahlevan et al., DATE'16: rack-scale loss in many-chip NTC fleets");

  bool accepted = true;

  // 1. Rack-scale power loss at the diurnal trough: the brownout ladder.
  {
    dc::Scenario s = dc::Scenario::by_name("rack-loss-web");
    const auto sweep = dse::sweep_faults(s, dse::default_brownout_arms(), ghz(2.0));
    print_brownout_sweep(sweep, s, "web");
    accepted = rackloss_acceptance(sweep, s) && accepted;
    std::cout << "\n";
  }

  // 2. Cooling failure on the NTC rack of a routed, capped fleet.
  {
    dc::Scenario s = dc::Scenario::by_name("thermal-emergency-mixed");
    const auto sweep = dse::sweep_faults(s, dse::default_brownout_arms(), ghz(2.0));
    print_brownout_sweep(sweep, s, "interactive");
    accepted = thermal_acceptance(sweep) && accepted;
    std::cout << "\n";
  }

  std::cout << (accepted ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL")
            << " (rack loss: ladder+ewake holds the critical bound at zero loss "
               "while the blind arm violates it; thermal: capped fleet rides out "
               "the emergency)\n";
  return accepted ? 0 : 1;
}
