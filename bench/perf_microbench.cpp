// P1 — google-benchmark microbenchmarks of the simulator's hot loops:
// DRAM channel scheduling, cache-array probes, OoO core cycles, the
// workload generator and the technology-model solver.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "ntserv/ntserv.hpp"

using namespace ntserv;

namespace {

void BM_DramRandomTraffic(benchmark::State& state) {
  dram::DramSystem mem;
  std::uint64_t id = 0;
  Xoshiro256StarStar rng{42};
  // Scratch-vector completion drain, matching the simulator's hot path
  // (Cluster::step reuses one vector; the allocating drain_completions()
  // overload is for tests and tools).
  std::vector<dram::MemResponse> completions;
  for (auto _ : state) {
    if ((id & 3) == 0) {
      const Addr a = rng.uniform_below(1ull << 30) & ~63ull;
      (void)mem.enqueue(id, a, rng.bernoulli(0.25));
    }
    mem.tick();
    completions.clear();
    mem.drain_completions_into(completions);
    benchmark::DoNotOptimize(completions.data());
    ++id;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DramRandomTraffic);

void BM_CacheArrayProbe(benchmark::State& state) {
  cache::CacheArray cache{{4 * kMiB, 16, cache::ReplacementPolicy::kLru, 7, false}};
  Xoshiro256StarStar rng{7};
  // Pre-populate.
  for (int i = 0; i < 100000; ++i) {
    const Addr a = rng.uniform_below(1ull << 24) & ~63ull;
    if (!cache.probe(a)) cache.insert(a, false);
  }
  for (auto _ : state) {
    const Addr a = rng.uniform_below(1ull << 24) & ~63ull;
    auto ref = cache.probe(a);
    if (!ref) benchmark::DoNotOptimize(cache.insert(a, false));
    benchmark::DoNotOptimize(ref);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheArrayProbe);

void BM_ClusterCycle(benchmark::State& state) {
  sim::ClusterConfig cc;
  cc.core_clock = ghz(2.0);
  std::vector<std::unique_ptr<cpu::UopSource>> sources;
  for (int c = 0; c < 4; ++c) {
    sources.push_back(std::make_unique<workload::SyntheticWorkload>(
        workload::WorkloadProfile::web_search(), 100 + static_cast<std::uint64_t>(c),
        workload::AddressSpace::for_core(static_cast<CoreId>(c))));
  }
  sim::Cluster cluster{cc, std::move(sources)};
  cluster.run(50'000);  // warm
  for (auto _ : state) {
    cluster.run(100);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
  state.counters["ipc"] = cluster.metrics().ipc / 4.0;
}
BENCHMARK(BM_ClusterCycle);

/// The event-skipping kernel against the pure ticked path, on the
/// memory-bound workload where skipping matters (range arg 0 = ticked,
/// 1 = event-skipping).
void BM_ClusterRunEventSkip(benchmark::State& state) {
  sim::ClusterConfig cc;
  cc.core_clock = ghz(2.0);
  cc.event_skipping = state.range(0) != 0;
  std::vector<std::unique_ptr<cpu::UopSource>> sources;
  for (int c = 0; c < 4; ++c) {
    sources.push_back(std::make_unique<workload::SyntheticWorkload>(
        workload::WorkloadProfile::data_serving(), 100 + static_cast<std::uint64_t>(c),
        workload::AddressSpace::for_core(static_cast<CoreId>(c))));
  }
  sim::Cluster cluster{cc, std::move(sources)};
  cluster.run(50'000);  // warm
  for (auto _ : state) {
    cluster.run(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
  state.counters["skip_frac"] =
      static_cast<double>(cluster.skipped_cycles()) / static_cast<double>(cluster.now());
}
BENCHMARK(BM_ClusterRunEventSkip)->Arg(0)->Arg(1);

/// One small DSE sweep through the thread pool (range arg = threads).
void BM_SweepParallel(benchmark::State& state) {
  power::ServerPowerModel platform{
      tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, power::ChipConfig{}};
  sim::ServerSimConfig cfg;
  cfg.smarts.warm_instructions = 100'000;
  cfg.smarts.warmup = 5'000;
  cfg.smarts.measure = 10'000;
  cfg.smarts.min_samples = 2;
  cfg.smarts.max_samples = 3;
  sim::ServerSimulator simulator{workload::WorkloadProfile::web_search(), platform, cfg};
  const auto grid = sim::frequency_grid(mhz(400), ghz(2.0), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.sweep(grid, static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_SweepParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// One closed-loop fleet run (governed dispatch, epochs, admission,
/// budgets): the whole src/ctrl + src/dc serving stack end to end, sized
/// for bench turnaround. Range arg 0 = open loop at 2 GHz, 1 = NTC-boost
/// governor — the delta is the runtime-control overhead plus whatever
/// DVFS trajectory the governor drives.
void BM_ClosedLoopFleet(benchmark::State& state) {
  dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
  s.requests = 60;
  s.warmup_requests = 8;
  if (state.range(0) == 0) s.governor.kind = ctrl::GovernorKind::kNone;
  // Self-profiling rides along (trace and metrics stay disabled): the
  // epoch-barrier and whole-run wall costs land as counters in the
  // archived BENCH JSON, so control-plane overhead is tracked PR over PR.
  obs::Telemetry telemetry;
  telemetry.timers.enable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc::run_scenario(s, ghz(2.0), &telemetry));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.requests));
  const auto barriers = telemetry.timers.count("epoch-barrier");
  if (barriers > 0) {
    state.counters["barrier_us_per_epoch"] =
        telemetry.timers.total_seconds("epoch-barrier") * 1e6 /
        static_cast<double>(barriers);
  }
  const auto runs = telemetry.timers.count("fleet-run");
  if (runs > 0) {
    state.counters["fleet_run_ms"] =
        telemetry.timers.total_seconds("fleet-run") * 1e3 / static_cast<double>(runs);
  }
}
BENCHMARK(BM_ClosedLoopFleet)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The sharded intra-run data plane (dc::FleetRunner + ShardPlan): one
/// governed diurnal fleet run, chips split across `Arg` shards advanced
/// by `Arg` workers between epoch barriers. The Arg(4) leg also gates
/// two contracts inline: the sharded result must be bit-identical to the
/// serial run (always), and on hosts with >= 4 hardware threads the
/// sharded run must actually be faster — a soft 1.5x sanity bound, well
/// under the >= 3x the scaling demo shows at 8 threads on idle machines
/// (see docs/performance.md "Sharded fleet execution").
void BM_ShardedFleet(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
  s.servers = 16;  // enough chips that every shard carries real work
  s.requests = 240;
  s.warmup_requests = 24;
  const dc::FleetRunner runner{s.fleet_config(ghz(2.0))};
  const dc::RunOptions options{.shards = threads, .threads = threads};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.requests));
  if (threads != 4) return;
  const auto wall = [&](const dc::RunOptions& o, dc::FleetResult& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = runner.run(o);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  dc::FleetResult serial, sharded;
  const double serial_s = wall(dc::RunOptions{.shards = 1, .threads = 1}, serial);
  const double sharded_s = wall(options, sharded);
  if (serial.p99.value() != sharded.p99.value() ||
      serial.span_cycles != sharded.span_cycles ||
      serial.completed_all != sharded.completed_all ||
      serial.energy.value() != sharded.energy.value()) {
    state.SkipWithError("sharded run diverged from the serial reference");
    return;
  }
  state.counters["speedup_4t"] = serial_s / sharded_s;
  if (std::thread::hardware_concurrency() >= 4 && serial_s / sharded_s < 1.5) {
    state.SkipWithError("sharded fleet under the 1.5x speedup bound at 4 threads");
  }
}
BENCHMARK(BM_ShardedFleet)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// A single core against its memory system, on a dependency-heavy stream
/// that keeps the ROB's waiting region full — the worst case for the
/// polled issue scan and the best isolation of the issue stage. Range
/// args: {issue scheduler (0 = polled scan, 1 = wakeup list), core clock
/// in MHz (the paper's sweeps spend most wall-clock at the low end)}.
void BM_IssueWakeup(benchmark::State& state) {
  class ChainSource final : public cpu::UopSource {
   public:
    cpu::MicroOp next() override {
      cpu::MicroOp op;
      op.pc = 0x1000 + (n_ % 8) * 4;
      // Mostly long serial chains (the window fills with waiting uops),
      // salted with L1-resident loads so the memory path stays live.
      if (n_ % 7 == 0) {
        op.type = cpu::UopType::kLoad;
        op.mem_addr = 0x100000 + (n_ % 128) * 8;
      }
      op.src_dist[0] = 1;
      op.src_dist[1] = static_cast<std::uint16_t>(n_ % 5 == 0 ? 24 : 0);
      ++n_;
      return op;
    }

   private:
    std::uint64_t n_ = 0;
  };

  cpu::CoreParams params;
  params.wakeup_list = state.range(0) != 0;
  const Hertz clock = mhz(static_cast<double>(state.range(1)));
  ChainSource source;
  cache::ClusterMemorySystem memory{cache::HierarchyParams{}, dram::DramConfig{}, clock};
  cpu::OooCore core{params, 0, memory, source};
  std::vector<cache::MissCompletion> completions;
  Cycle now = 0;
  auto run = [&](Cycle cycles) {
    for (Cycle c = 0; c < cycles; ++c, ++now) {
      memory.tick(now);
      completions.clear();
      memory.drain_completions_into(completions);
      for (const auto& d : completions) core.on_miss_completion(d.user_tag, d.done);
      core.tick(now);
    }
  };
  run(20'000);  // warm
  for (auto _ : state) {
    run(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
  state.counters["ipc"] = core.stats().ipc();
}
BENCHMARK(BM_IssueWakeup)
    ->Args({0, 200})
    ->Args({1, 200})
    ->Args({0, 2000})
    ->Args({1, 2000});

void BM_WorkloadGenerator(benchmark::State& state) {
  workload::SyntheticWorkload gen{workload::WorkloadProfile::data_serving(), 11};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkloadGenerator);

void BM_VoltageSolver(benchmark::State& state) {
  const tech::TechnologyModel soi{tech::TechnologyParams::fdsoi28()};
  double f = 0.2e9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soi.voltage_for(Hertz{f}));
    f += 1e6;
    if (f > 3.0e9) f = 0.2e9;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VoltageSolver);

void BM_ZipfSampler(benchmark::State& state) {
  Xoshiro256StarStar rng{3};
  ZipfSampler zipf{1 << 20, 0.99};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSampler);

// The observability zero-cost contract: a disabled TraceSink's emit() is
// one branch and returns. Arg(0) measures the disabled fast path (and
// asserts the per-emit bound the fleet relies on); Arg(1) the enabled
// record path for comparison.
void BM_TraceOverhead(benchmark::State& state) {
  obs::TraceSink sink;
  if (state.range(0) == 1) {
    sink.enable();
    sink.begin_run(/*chips=*/4);
  }
  std::int64_t id = 0;
  for (auto _ : state) {
    sink.emit(obs::EventKind::kDispatch, /*chip=*/2, /*time_s=*/1.0 + 1e-9 * id,
              /*tenant=*/0, id);
    ++id;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.range(0) == 0) {
    // Assert the disabled-path bound explicitly: 50 ns/emit is ~2 orders
    // above the expected one-branch cost, but trips if an allocation or
    // virtual call ever creeps into the fast path.
    constexpr int kOps = 1'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      sink.emit(obs::EventKind::kDispatch, 2, 1.0, 0, i);
    }
    const double ns_per_emit =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(kOps);
    state.counters["disabled_ns_per_emit"] = ns_per_emit;
    if (ns_per_emit > 50.0) {
      state.SkipWithError("disabled TraceSink emit exceeds the 50 ns/op bound");
    }
  }
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

}  // namespace

// BENCHMARK_MAIN() plus the self-profiling hook: with
// NTSERV_BENCH_PHASE_TIMERS set (run_bench.sh's default), a global
// obs::PhaseTimers collects the DSE sweep-point wall costs of any
// dse-driven benchmark and the accumulated phase table prints after the
// run (stderr, so --benchmark_out JSON stays clean).
int main(int argc, char** argv) {
  obs::PhaseTimers timers;
  const char* flag = std::getenv("NTSERV_BENCH_PHASE_TIMERS");
  if (flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
    timers.enable();
    dse::set_phase_timers(&timers);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (timers.enabled()) timers.report(std::cerr);
  dse::set_phase_timers(nullptr);
  return 0;
}
