// A7 — Sec. V-C ablation: energy proportionality via power management.
//
// Compares power-management policies over a diurnal datacenter load trace
// on the FD-SOI platform, using a measured UIPS(f) curve for Web Search.
// The paper's knobs appear as policies: RBB state-retentive sleep enables
// race-to-idle and the NTC-wide duty-cycling policy; DVFS-follow is the
// classic governor; fixed-max is the unmanaged baseline.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — power-management policies over a diurnal load trace",
                      "Pahlevan et al., DATE'16, Sec. II-A knobs + Sec. V-C direction");

  // Measure the UIPS(f) curve once with the detailed simulator.
  const auto platform = bench::default_platform();
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};
  const auto sweep =
      driver.sweep(workload::WorkloadProfile::web_search(), bench::paper_frequency_grid(8));

  pm::PowerManager manager{platform, sweep.uips_samples()};
  std::cout << "Efficiency-optimal pin frequency: "
            << TextTable::num(in_ghz(manager.efficiency_optimal_frequency()), 2)
            << " GHz; sleep floor: " << TextTable::num(manager.sleep_power().value(), 1)
            << " W\n\n";

  const auto trace = pm::LoadTrace::diurnal(96, 0.10, 0.85);  // 24h at 15 min epochs
  TextTable t({"policy", "energy (kJ)", "avg power (W)", "avg f (GHz)", "violations",
               "vs fixed-max"});
  const double fixed_energy =
      manager.run(trace, pm::Policy::kFixedMax).energy.value();
  for (pm::Policy p : {pm::Policy::kFixedMax, pm::Policy::kDvfsFollow,
                       pm::Policy::kRaceToIdle, pm::Policy::kNtcWide}) {
    const auto r = manager.run(trace, p);
    t.add_row({to_string(p), TextTable::num(r.energy.value() / 1e3, 2),
               TextTable::num(r.avg_power.value(), 1),
               TextTable::num(r.avg_frequency_ghz, 2), std::to_string(r.violations),
               TextTable::num(100.0 * (1.0 - r.energy.value() / fixed_energy), 1) + "%"});
  }
  bench::print_table(t, "ablation_governors");

  std::cout << "(expected: every managed policy beats fixed-max; duty-cycling near the\n"
            << " server-efficiency optimum — the paper's NTC thesis — wins at the low\n"
            << " utilizations typical of datacenters)\n";
  return 0;
}
