// A2 — Sec. II-A ablation: the three body-bias knobs of UTBB FD-SOI.
//
//  1. Energy-optimal FBB per frequency target (best-energy-point search);
//  2. FBB boost transitions vs DVFS voltage ramps (<1 us for 5 mm^2);
//  3. RBB state-retentive sleep: ~10x leakage reduction per -1 V.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — body-bias knobs: optimal FBB, boost transitions, RBB sleep",
                      "Pahlevan et al., DATE'16, Sec. II-A items 1-3");

  const tech::TechnologyModel soi{tech::TechnologyParams::fdsoi28()};

  std::cout << "--- 1. Energy-optimal forward body bias per frequency ---\n";
  TextTable t({"f (GHz)", "Vbb* (V)", "Vdd* (V)", "P/core (W)", "P/core @Vbb=0 (W)",
               "saving"});
  for (double g : {0.2, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const Hertz f = ghz(g);
    const auto best = tech::optimal_forward_bias(soi, f);
    const double p0 = soi.core_power(f).value();
    t.add_row({TextTable::num(g, 1), TextTable::num(best.body_bias.value(), 2),
               TextTable::num(best.vdd.value(), 3), TextTable::num(best.power.value(), 3),
               TextTable::num(p0, 3),
               TextTable::num(100.0 * (1.0 - best.power.value() / p0), 1) + "%"});
  }
  bench::print_table(t, "ablation_bb_optimal");

  std::cout << "--- 2. Boost transition time: body bias vs DVFS ramp ---\n";
  TextTable b({"core area (mm^2)", "Vbb swing (V)", "BB settle (us)", "DVFS ramp (us)"});
  for (double area : {5.0, 10.0, 20.0}) {
    for (double swing : {1.3, 3.0}) {
      b.add_row({TextTable::num(area, 0), TextTable::num(swing, 1),
                 TextTable::num(in_us(tech::bias_transition_time(area, volts(0), volts(swing))), 2),
                 TextTable::num(in_us(tech::dvfs_transition_time(volts(0.7), volts(1.0))), 1)});
    }
  }
  bench::print_table(b, "ablation_bb_transition");

  std::cout << "--- 3. RBB state-retentive sleep leakage ---\n";
  const tech::TechnologyModel cw{tech::TechnologyParams::fdsoi28_cw()};
  TextTable s({"RBB (V)", "leak/core @0.5V ret (mW)", "reduction vs Vbb=0"});
  for (double rbb : {0.0, -0.5, -1.0, -2.0, -3.0}) {
    const Watt leak = tech::sleep_leakage_power(cw, volts(0.5), volts(rbb));
    s.add_row({TextTable::num(rbb, 1), TextTable::num(in_mw(leak), 3),
               TextTable::num(tech::rbb_leakage_reduction(cw, volts(0.5), volts(rbb)), 1) + "x"});
  }
  bench::print_table(s, "ablation_bb_sleep");
  std::cout << "(paper: ~an order of magnitude leakage reduction, state-retentive)\n";
  return 0;
}
