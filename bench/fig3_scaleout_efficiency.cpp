// E4 — Fig. 3: UIPS/Watt of (a) the cores, (b) the SoC and (c) the whole
// server versus core frequency for the four scale-out applications.
//
// Expected shape: cores-only efficiency decreases monotonically with f
// (peak at the lowest functional frequency — the NTC argument); adding
// the constant-power uncore moves the optimum to ~1 GHz; adding DRAM
// background power moves it further right (~1.2 GHz).
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Fig. 3 — efficiency (UIPS/W) of cores / SoC / server, scale-out apps",
                      "Pahlevan et al., DATE'16, Figure 3");

  const auto platform = bench::default_platform();
  const auto grid = bench::paper_frequency_grid();
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};

  std::vector<dse::SweepResult> sweeps;
  for (const auto& profile : workload::WorkloadProfile::scale_out_suite()) {
    sweeps.push_back(driver.sweep(profile, grid));
  }

  for (dse::Scope scope : {dse::Scope::kCores, dse::Scope::kSoc, dse::Scope::kServer}) {
    std::cout << "--- Fig. 3" << (scope == dse::Scope::kCores ? 'a'
                                  : scope == dse::Scope::kSoc ? 'b' : 'c')
              << ": " << dse::to_string(scope) << " efficiency (GUIPS/W) ---\n";
    TextTable t({"f (GHz)", "Data Serving", "Web Search", "Web Serving", "Media Streaming"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      std::vector<std::string> row{TextTable::num(in_ghz(grid[i]), 2)};
      for (auto& s : sweeps) row.push_back(TextTable::num(s.efficiency(i, scope) / 1e9, 3));
      t.add_row(row);
    }
    bench::print_table(t, std::string("fig3_") + dse::to_string(scope));
    for (auto& s : sweeps) {
      std::cout << "  optimum for " << s.workload << ": "
                << TextTable::num(in_ghz(s.optimal_frequency(scope)), 2) << " GHz\n";
    }
    std::cout << "\n";
  }
  return 0;
}
