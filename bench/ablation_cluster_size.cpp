// A3 — Sec. II-B check: cluster size does not change the trends.
//
// The paper computes the optimal scale-out pod as 16 cores + 4MB LLC but
// simulates 4-core clusters for turnaround, verifying the trends hold. We
// re-verify: compare 2-core/2MB, 4-core/4MB and 8-core/8MB clusters
// (constant LLC per core) and check the UIPS(f) shape and the SoC-scope
// optimum are stable.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — cluster size insensitivity (2/4/8 cores per cluster)",
                      "Pahlevan et al., DATE'16, Sec. II-B");

  const auto profile = workload::WorkloadProfile::web_search();
  const auto grid = sim::frequency_grid(ghz(0.25), ghz(2.0), 6);

  TextTable t({"cores/cluster", "f (GHz)", "UIPC/core", "UIPS chip (G)", "SoC eff (GUIPS/W)"});
  for (int cores : {2, 4, 8}) {
    sim::ServerSimConfig cfg = bench::bench_sim_config();
    cfg.cluster.hierarchy.cores = cores;
    cfg.cluster.hierarchy.llc.size_bytes =
        static_cast<std::uint64_t>(cores) * 1024 * 1024;  // 1MB LLC per core
    cfg.chip.clusters = 36 / cores;  // constant 36-core chip
    cfg.chip.cores_per_cluster = cores;

    power::CactiLiteParams llc;
    llc.capacity_bytes = cfg.cluster.hierarchy.llc.size_bytes;
    const power::ServerPowerModel platform{
        tech::TechnologyModel{tech::TechnologyParams::fdsoi28()}, cfg.chip, llc};

    sim::ServerSimulator simulator{profile, platform, cfg};
    std::size_t best = 0;
    std::vector<double> eff;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto r = simulator.evaluate(grid[i]);
      eff.push_back(r.eff_soc);
      if (r.eff_soc > eff[best]) best = i;
      t.add_row({std::to_string(cores), TextTable::num(in_ghz(grid[i]), 2),
                 TextTable::num(r.uipc_cluster / cores, 3),
                 TextTable::num(r.uips / 1e9, 1), TextTable::num(r.eff_soc / 1e9, 3)});
    }
    std::cout << cores << "-core cluster SoC-scope optimum: "
              << TextTable::num(in_ghz(grid[best]), 2) << " GHz\n";
  }
  bench::print_table(t, "ablation_cluster_size");
  std::cout << "(expected: optima agree within one grid step across cluster sizes)\n";
  return 0;
}
