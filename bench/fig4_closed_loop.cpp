// E4c — Fig. 4 (closed loop): energy and measured tail latency of the
// runtime DVFS governors (src/ctrl) on serving fleets under real traffic.
//
// The offline policy comparison (ablation_governors, src/pm) scores
// power-management policies against an oracle demand trace; this driver
// closes the loop instead: the governors run *inside* the fleet
// simulation, reacting to measured epoch utilization and measured epoch
// p99, paying physical DVFS/body-bias transition costs, with admission
// control shedding load under saturation. Each scenario compares
//
//   fixed-max   — the unmanaged baseline: top frequency, never sleeps;
//   ondemand    — reactive DVFS-follow on measured utilization
//                 (voltage-ramp transition stalls on every step);
//   ntc-boost   — the paper's thesis as a feedback controller: pin the
//                 server-efficiency optimum of the *measured* UIPS curve,
//                 FBB-boost above nominal f_max when the epoch p99
//                 approaches the QoS limit (sub-microsecond bias swing).
//
// Expected shape (the PR's acceptance criteria): on the diurnal scenario
// ntc-boost lands strictly below fixed-max in energy at equal-or-better
// measured p99, with zero QoS violations outside governor transition
// epochs. Ondemand saves comparable energy but pays for its slow ramps
// in tail latency on bursty arrivals.
//
// `--smoke` runs a short NTC-boost diurnal check with asserted shed-rate
// and violation bounds and a non-zero exit on failure (the CI hook).
#include <cmath>
#include <cstring>

#include "bench_common.hpp"

using namespace ntserv;

namespace {

constexpr ctrl::GovernorKind kKinds[] = {ctrl::GovernorKind::kFixedMax,
                                         ctrl::GovernorKind::kOndemandDvfs,
                                         ctrl::GovernorKind::kNtcBoost};

/// Measured UIPS(f) curve of a workload: the governor grid and capacity
/// model, produced by the same simulator that serves the requests.
pm::UipsCurve measured_curve(const dse::ExplorationDriver& driver,
                             const workload::WorkloadProfile& profile) {
  const auto grid = bench::paper_frequency_grid(6);
  const auto sweep = driver.sweep(profile, grid);
  pm::UipsCurve curve;
  curve.reserve(sweep.points.size());
  double floor = 0.0;
  for (const auto& p : sweep.points) {
    // Running max: SMARTS sampling noise can dent the measured curve by
    // a percent, but UIPS(f) is physically non-decreasing and the
    // PowerManager requires it.
    floor = std::max(floor, p.uips);
    curve.push_back({p.frequency, floor});
  }
  return curve;
}

int count_boosted(const dc::FleetResult& r) {
  int n = 0;
  for (const auto& e : r.epochs) n += e.boosted ? 1 : 0;
  return n;
}

void print_sweep(const dse::GovernorSweep& sweep, const dc::Scenario& scenario) {
  std::cout << "Scenario " << sweep.scenario << " (" << scenario.description << "),\n"
            << "  QoS p99 limit " << in_us(scenario.governor.qos_p99_limit)
            << " us, epoch " << scenario.governor.epoch_quanta << " quanta:\n";
  TextTable t({"governor", "energy (mJ)", "vs fixed", "p50 (us)", "p99 (us)",
               "avg f (GHz)", "trans", "stall (us)", "boosted ep", "viol", "shed %",
               "util"});
  const double fixed_energy =
      sweep.at(ctrl::GovernorKind::kFixedMax).result.energy.value();
  for (const auto& p : sweep.points) {
    const auto& r = p.result;
    t.add_row({std::string(to_string(p.governor)) + bench::truncated_mark(r),
               TextTable::num(r.energy.value() * 1e3, 2),
               TextTable::num(r.energy.value() / fixed_energy, 3),
               TextTable::num(in_us(r.p50), 1), TextTable::num(in_us(r.p99), 1),
               TextTable::num(r.avg_frequency_ghz, 2), std::to_string(r.transitions),
               TextTable::num(in_us(r.transition_time_total), 1),
               std::to_string(count_boosted(r)), std::to_string(r.qos_violation_epochs),
               TextTable::num(r.shed_rate * 100.0, 2), TextTable::num(r.utilization, 3)});
  }
  bench::print_table(t, "fig4_closed_loop_" + sweep.scenario);
}

/// The acceptance comparison on one sweep; prints PASS/FAIL and returns
/// whether every criterion held.
bool check_acceptance(const dse::GovernorSweep& sweep) {
  const auto& fixed = sweep.at(ctrl::GovernorKind::kFixedMax).result;
  const auto& ntc = sweep.at(ctrl::GovernorKind::kNtcBoost).result;
  const bool energy_ok = ntc.energy.value() < fixed.energy.value();
  const bool p99_ok = ntc.p99.value() <= fixed.p99.value();
  const bool qos_ok = ntc.qos_violation_epochs == 0;
  std::cout << "Acceptance (" << sweep.scenario << "): "
            << "ntc energy " << (energy_ok ? "<" : ">=") << " fixed ["
            << (energy_ok ? "PASS" : "FAIL") << "], "
            << "ntc p99 " << (p99_ok ? "<=" : ">") << " fixed ["
            << (p99_ok ? "PASS" : "FAIL") << "], "
            << "violations outside transitions == 0 [" << (qos_ok ? "PASS" : "FAIL")
            << "]\n\n";
  return energy_ok && p99_ok && qos_ok;
}

int run_smoke() {
  // Short NTC-boost diurnal run with asserted bounds: the CI gate for
  // the closed-loop subsystem.
  dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
  s.requests = 400;
  s.warmup_requests = 40;
  // Freeze the measured Web Serving curve's *shape* (a 2.65x UIPS range
  // over the 0.2-2 GHz axis — the knee the full run measures) instead of
  // paying a measurement sweep: the NTC pin only wins where the curve is
  // strongly sub-linear, and the smoke must gate the governor at the
  // operating point the paper argues about. Absolute scale is cosmetic —
  // only curve ratios reach the governor.
  s.governor.curve.clear();
  for (int i = 0; i < 10; ++i) {
    const double f = 0.2e9 + (2.0e9 - 0.2e9) * i / 9.0;
    s.governor.curve.push_back({Hertz{f}, 2.52e10 * std::pow(f / 2e9, 0.423)});
  }
  const auto sweep = dse::sweep_governors(
      s, {ctrl::GovernorKind::kFixedMax, ctrl::GovernorKind::kNtcBoost}, ghz(2.0));
  const auto& fixed = sweep.at(ctrl::GovernorKind::kFixedMax).result;
  const auto& ntc = sweep.at(ctrl::GovernorKind::kNtcBoost).result;
  bool ok = true;
  auto require = [&](bool cond, const char* what) {
    std::cout << (cond ? "PASS" : "FAIL") << ": " << what << "\n";
    ok = ok && cond;
  };
  require(!ntc.truncated, "closed-loop run completes without truncation");
  require(ntc.qos_violation_epochs == 0, "zero QoS violations outside transition epochs");
  require(ntc.shed_rate <= 0.05, "shed rate bounded (<= 5%)");
  require(ntc.energy.value() < fixed.energy.value(),
          "ntc-boost energy below the fixed-max baseline");
  require(ntc.p99.value() <= fixed.p99.value() * 1.10,
          "ntc-boost tail within 10% of fixed-max at smoke scale");
  require(ntc.has_epoch_trajectory() && ntc.avg_frequency_ghz > 0.0,
          "epoch records populated");
  std::cout << (ok ? "SMOKE PASS" : "SMOKE FAIL") << ": ntc energy "
            << ntc.energy.value() * 1e3 << " mJ vs fixed " << fixed.energy.value() * 1e3
            << " mJ, p99 " << in_us(ntc.p99) << " vs " << in_us(fixed.p99)
            << " us, shed rate " << ntc.shed_rate << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "webserving-diurnal-ntcboost");
  if (topts.any()) return bench::run_telemetry(topts);

  bench::print_header(
      "Fig. 4 (closed loop) — fleet energy & measured p99 under runtime governors",
      "Pahlevan et al., DATE'16, Sec. V-C as a closed-loop serving system");

  const auto platform = bench::default_platform();
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};

  // Measured UIPS curves anchor each scenario's governor: the efficiency
  // optimum, the ondemand grid and the energy model all come from the
  // same simulator that serves the requests.
  const auto webserving_curve =
      measured_curve(driver, workload::WorkloadProfile::web_serving());
  const auto dataserving_curve =
      measured_curve(driver, workload::WorkloadProfile::data_serving());
  const auto websearch_curve =
      measured_curve(driver, workload::WorkloadProfile::web_search());
  {
    const pm::PowerManager m{platform, webserving_curve};
    std::cout << "Web Serving measured curve: f_opt(server) = "
              << in_ghz(m.efficiency_optimal_frequency()) << " GHz, UIPS(2GHz)/UIPS(0.2GHz) = "
              << m.peak_uips() / m.uips_at(ghz(0.2)) << "\n\n";
  }

  const std::vector<ctrl::GovernorKind> kinds(std::begin(kKinds), std::end(kKinds));
  bool accepted = true;

  // 1. Diurnal day/night load: the headline comparison.
  {
    dc::Scenario s = dc::Scenario::by_name("webserving-diurnal-ntcboost");
    s.governor.curve = webserving_curve;
    const auto sweep = dse::sweep_governors(s, kinds, ghz(2.0));
    print_sweep(sweep, s);
    accepted = check_acceptance(sweep) && accepted;
  }

  // 2. MMPP request storms: burst-chasing governors; the SLO is set at
  //    3x the unmanaged baseline's measured tail.
  {
    dc::Scenario s = dc::Scenario::by_name("dataserving-mmpp-ondemand");
    s.governor.curve = dataserving_curve;
    dc::Scenario probe = s;
    probe.governor.kind = ctrl::GovernorKind::kFixedMax;
    const auto fixed = dc::run_scenario(probe, ghz(2.0));
    s.governor.qos_p99_limit = fixed.p99 * 3.0;
    const auto sweep = dse::sweep_governors(s, kinds, ghz(2.0));
    print_sweep(sweep, s);
  }

  // 3. Saturation with admission control: governors under overload with
  //    client back-off; shed rate is the headline column.
  {
    dc::Scenario s = dc::Scenario::by_name("websearch-saturation-admission");
    s.governor.curve = websearch_curve;
    dc::Scenario probe = s;
    probe.governor.kind = ctrl::GovernorKind::kFixedMax;
    const auto fixed = dc::run_scenario(probe, ghz(2.0));
    s.governor.qos_p99_limit = fixed.p99 * 3.0;
    const auto sweep = dse::sweep_governors(s, kinds, ghz(2.0));
    print_sweep(sweep, s);
  }

  std::cout << (accepted ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL")
            << " (diurnal: ntc-boost strictly cheaper at equal-or-better p99, "
               "zero non-transition violations)\n";
  return accepted ? 0 : 1;
}
