// A4 — Sec. V-C: consolidation headroom in relaxed-QoS public clouds.
//
// When QoS is met well below the server-efficiency optimum, running at
// the optimum leaves throughput headroom that an oversubscribed public
// cloud can fill with co-located work. Reports the QoS floor, the chosen
// efficiency optimum, and the headroom factor per workload.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Ablation — consolidation headroom under relaxed QoS",
                      "Pahlevan et al., DATE'16, Sec. V-C (co-allocation discussion)");

  const auto platform = bench::default_platform();
  const auto grid = bench::paper_frequency_grid(8);
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};

  TextTable t({"workload", "QoS floor (MHz)", "chosen f (GHz)", "server eff (GUIPS/W)",
               "norm p99 @chosen", "headroom"});
  const auto targets = qos::QosTarget::scale_out_suite();
  const auto profiles = workload::WorkloadProfile::scale_out_suite();
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    const auto sweep = driver.sweep(profiles[w], grid);
    const auto choice = dse::choose_operating_point(sweep, targets[w]);
    const double headroom = dse::consolidation_headroom(sweep, targets[w]);
    t.add_row({profiles[w].name, TextTable::num(in_mhz(choice.qos_floor), 0),
               TextTable::num(in_ghz(choice.chosen_frequency), 2),
               TextTable::num(choice.efficiency / 1e9, 3),
               TextTable::num(choice.normalized_p99, 3),
               TextTable::num(headroom, 2) + "x"});
  }
  bench::print_table(t, "ablation_consolidation");
  std::cout << "(headroom = spare throughput at the efficiency optimum relative to the\n"
            << " QoS floor: capacity available for co-scheduled work, Sec. V-C)\n";
  return 0;
}
