// E2 — Table I: DDR4 per-rank energy coefficients and the derived
// server-level memory power (background + bandwidth-proportional parts).
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Table I — 8x 4Gbit DDR4-1600 rank energy & memory power model",
                      "Pahlevan et al., DATE'16, Table I & Sec. II-C3");

  const power::DramPowerModel ddr4{power::DramPowerParams{}};
  const auto& e = ddr4.params().energy;

  TextTable t({"coefficient", "value", "paper"});
  t.add_row({"E_IDLE  (nJ/cycle)", TextTable::num(in_nj(e.idle_per_cycle), 4), "0.0728"});
  t.add_row({"E_READ  (nJ/byte)", TextTable::num(in_nj(e.read_per_byte), 4), "0.2566"});
  t.add_row({"E_WRITE (nJ/byte)", TextTable::num(in_nj(e.write_per_byte), 4), "0.2495"});
  bench::print_table(t, "table1");

  TextTable d({"read BW (GB/s)", "write BW (GB/s)", "background (W)", "dynamic (W)",
               "total (W)"});
  for (double rd : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    const double wr = rd / 4.0;
    const auto bg = ddr4.background_power();
    const auto dyn = ddr4.dynamic_power(rd * 1e9, wr * 1e9);
    d.add_row({TextTable::num(rd, 1), TextTable::num(wr, 1), TextTable::num(bg.value(), 2),
               TextTable::num(dyn.value(), 2), TextTable::num((bg + dyn).value(), 2)});
  }
  std::cout << "Derived memory power, " << ddr4.total_ranks() << " ranks (4ch x 4):\n";
  bench::print_table(d, "table1_power");
  return 0;
}
