// E5 — Fig. 4: UIPS/Watt of cores / SoC / server versus core frequency for
// the two virtualized banking-VM classes.
//
// Expected shape: same three-scope behaviour as Fig. 3; VMs high-mem UIPS
// exceeds VMs low-mem (the high-memory Bitbrains class is also more
// CPU-bound); server-scope optimum around 1 GHz.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Fig. 4 — efficiency (UIPS/W) of cores / SoC / server, virtualized apps",
                      "Pahlevan et al., DATE'16, Figure 4");

  const auto platform = bench::default_platform();
  const auto grid = bench::paper_frequency_grid();
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};

  std::vector<dse::SweepResult> sweeps;
  for (const auto& profile : workload::WorkloadProfile::vm_suite()) {
    sweeps.push_back(driver.sweep(profile, grid));
  }

  for (dse::Scope scope : {dse::Scope::kCores, dse::Scope::kSoc, dse::Scope::kServer}) {
    std::cout << "--- Fig. 4" << (scope == dse::Scope::kCores ? 'a'
                                  : scope == dse::Scope::kSoc ? 'b' : 'c')
              << ": " << dse::to_string(scope) << " efficiency (GUIPS/W) ---\n";
    TextTable t({"f (GHz)", "VMs low-mem", "VMs high-mem", "UIPS low (G)", "UIPS high (G)"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      t.add_row({TextTable::num(in_ghz(grid[i]), 2),
                 TextTable::num(sweeps[0].efficiency(i, scope) / 1e9, 3),
                 TextTable::num(sweeps[1].efficiency(i, scope) / 1e9, 3),
                 TextTable::num(sweeps[0].points[i].uips / 1e9, 1),
                 TextTable::num(sweeps[1].points[i].uips / 1e9, 1)});
    }
    bench::print_table(t, std::string("fig4_") + dse::to_string(scope));
    for (auto& s : sweeps) {
      std::cout << "  optimum for " << s.workload << ": "
                << TextTable::num(in_ghz(s.optimal_frequency(scope)), 2) << " GHz\n";
    }
    std::cout << "\n";
  }
  return 0;
}
