// E3/E6 — Fig. 2: 99th-percentile latency normalized to each scale-out
// application's QoS limit versus core frequency (0.2-2 GHz), plus the
// Sec. V-A virtualized-application degradation analysis.
//
// Expected shape: all four applications remain under QoS (normalized
// latency <= 1) down to 200-500 MHz; VM degradation stays <= 4x down to
// ~500 MHz and <= 2x down to ~1 GHz.
#include "bench_common.hpp"

using namespace ntserv;

int main() {
  bench::print_header("Fig. 2 — normalized 99th-pct latency vs core frequency",
                      "Pahlevan et al., DATE'16, Figure 2 & Sec. V-A");

  const auto platform = bench::default_platform();
  const auto grid = bench::paper_frequency_grid();
  dse::ExplorationDriver driver{platform, bench::bench_sim_config()};

  TextTable t({"f (GHz)", "Data Serving", "Web Search", "Web Serving", "Media Streaming"});
  std::vector<dse::SweepResult> sweeps;
  std::vector<qos::QosTarget> targets = qos::QosTarget::scale_out_suite();
  for (const auto& profile : workload::WorkloadProfile::scale_out_suite()) {
    sweeps.push_back(driver.sweep(profile, grid));
  }

  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row{TextTable::num(in_ghz(grid[i]), 2)};
    for (std::size_t w = 0; w < sweeps.size(); ++w) {
      const double norm = qos::normalized_latency(targets[w], sweeps[w].points[i].uips,
                                                  sweeps[w].baseline_uips());
      row.push_back(TextTable::num(norm, 3));
    }
    t.add_row(row);
  }
  bench::print_table(t, "fig2");

  std::cout << "QoS frequency floors (normalized latency crosses 1.0):\n";
  for (std::size_t w = 0; w < sweeps.size(); ++w) {
    const Hertz floor =
        qos::frequency_floor(targets[w], sweeps[w].uips_samples(), sweeps[w].baseline_uips());
    std::cout << "  " << targets[w].workload << ": " << TextTable::num(in_mhz(floor), 0)
              << " MHz (paper band: 200-500 MHz)\n";
  }

  std::cout << "\nVirtualized applications — batch degradation vs 2 GHz baseline:\n";
  TextTable v({"f (GHz)", "VMs low-mem degr.", "VMs high-mem degr."});
  std::vector<dse::SweepResult> vm_sweeps;
  for (const auto& profile : workload::WorkloadProfile::vm_suite()) {
    vm_sweeps.push_back(driver.sweep(profile, grid));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    v.add_row({TextTable::num(in_ghz(grid[i]), 2),
               TextTable::num(qos::batch_degradation(vm_sweeps[0].points[i].uips,
                                                     vm_sweeps[0].baseline_uips()), 2),
               TextTable::num(qos::batch_degradation(vm_sweeps[1].points[i].uips,
                                                     vm_sweeps[1].baseline_uips()), 2)});
  }
  bench::print_table(v, "fig2_vm_degradation");

  for (std::size_t w = 0; w < vm_sweeps.size(); ++w) {
    const auto samples = vm_sweeps[w].uips_samples();
    const double base = vm_sweeps[w].baseline_uips();
    std::cout << "  " << vm_sweeps[w].workload << ": f(degr<=4x) = "
              << TextTable::num(
                     in_mhz(qos::degradation_floor(samples, base, qos::kMaxDegradationBound)), 0)
              << " MHz (paper ~500), f(degr<=2x) = "
              << TextTable::num(
                     in_mhz(qos::degradation_floor(samples, base, qos::kMinDegradationBound)), 0)
              << " MHz (paper ~1000)\n";
  }
  return 0;
}
