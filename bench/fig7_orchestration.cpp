// Fig. 7 (orchestration): the fleet orchestration layer (src/orch) over
// the closed-loop serving fleet — autoscaling against a diurnal day,
// a fleet-level power cap shared by per-chip governors, and tech routing
// between an NTC group and a conventional bulk-28nm group.
//
// The paper sizes its NTC fleet statically for the peak; this driver
// quantifies what the orchestration layer adds on top:
//  (a) energy an autoscaler saves at equal p99 by parking the diurnal
//      trough at the platform's deep-idle floor (vs a fixed-size fleet
//      of never-sleeping fixed-max chips);
//  (b) the tail cost of a binding rack cap, with the guarantee that the
//      realized fleet power never exceeds the cap on the epoch grid;
//  (c) the off-peak consolidation of a routed NTC+conventional fleet
//      onto the NTC group, with latency-critical work steered to the
//      conventional group at peak;
//  (d) a provisioning sweep: chips a p99 bound needs, with and without
//      autoscaling.
//
// Usage: fig7_orchestration [--smoke]
//   --smoke runs only the acceptance checks (CI gate), exit 0/1.

#include <cstring>
#include <iostream>

#include "bench_common.hpp"

using namespace ntserv;

namespace {

/// The equal-QoS bound both autoscale arms are held to (well above the
/// healthy fixed fleet's tail, wide enough to absorb wake stalls).
constexpr double kAutoscaleP99BoundUs = 100.0;

bool check(bool cond, const char* what, bool& ok) {
  std::cout << (cond ? "PASS" : "FAIL") << ": " << what << "\n";
  ok = ok && cond;
  return cond;
}

/// A run that lost nothing: untruncated, no shed/timeouts/stranded work.
bool lossless(const dc::FleetResult& r) {
  return !r.truncated && r.shed == 0 && r.timed_out == 0 && r.in_flight == 0;
}

struct AutoscalePair {
  dc::FleetResult scaled;
  dc::FleetResult fixed;
};

AutoscalePair run_autoscale() {
  const dc::Scenario s = dc::Scenario::by_name("autoscale-diurnal-web");
  dc::Scenario fixed = s;
  fixed.orchestration.autoscaler.enabled = false;
  // Same seed, same arrivals: the only difference is the autoscaler.
  return {dc::run_scenario(s, ghz(2.0)), dc::run_scenario(fixed, ghz(2.0))};
}

/// Acceptance (a): autoscaling the diurnal scenario saves >= 15% energy
/// vs the fixed-size fleet while both meet the same p99 bound.
bool autoscale_acceptance(const AutoscalePair& p) {
  bool ok = true;
  check(lossless(p.scaled) && lossless(p.fixed), "both arms complete losslessly", ok);
  check(in_us(p.scaled.p99) <= kAutoscaleP99BoundUs &&
            in_us(p.fixed.p99) <= kAutoscaleP99BoundUs,
        "both arms meet the shared p99 bound (equal QoS)", ok);
  check(p.scaled.autoscale_parks > 0 && p.scaled.autoscale_unparks > 0,
        "the autoscaler parks through the trough and wakes for the crest", ok);
  check(p.scaled.parked_seconds.value() > 0.0 && p.fixed.parked_seconds.value() == 0.0,
        "parked time accrues only under the autoscaler", ok);
  const double saving = 1.0 - p.scaled.energy.value() / p.fixed.energy.value();
  check(saving >= 0.15, "autoscaling saves >= 15% fleet energy at equal QoS", ok);
  return ok;
}

struct CapPair {
  dc::FleetResult capped;
  dc::FleetResult uncapped;
};

CapPair run_cap() {
  const dc::Scenario s = dc::Scenario::by_name("powercap-web");
  dc::Scenario uncapped = s;
  uncapped.orchestration.cap.enabled = false;
  return {dc::run_scenario(s, ghz(2.0)), dc::run_scenario(uncapped, ghz(2.0))};
}

/// Acceptance (b): the cap binds (it clamps governors, and the uncapped
/// fleet would exceed it) yet is never violated on the epoch grid.
bool cap_acceptance(const CapPair& p) {
  bool ok = true;
  check(lossless(p.capped) && lossless(p.uncapped), "both arms complete losslessly", ok);
  check(p.capped.cap_violation_epochs == 0 &&
            p.capped.peak_epoch_power.value() <= p.capped.fleet_cap.value() * (1.0 + 1e-9),
        "realized fleet power never exceeds the cap at the epoch grid", ok);
  check(p.capped.cap_clamp_epochs > 0, "the cap visibly clamps governor decisions", ok);
  check(p.uncapped.peak_epoch_power.value() > p.capped.fleet_cap.value(),
        "the uncapped fleet would exceed the cap (the cap binds)", ok);
  const double cost = in_us(p.capped.p99) - in_us(p.uncapped.p99);
  std::cout << "  cap p99 cost: " << cost << " us (capped " << in_us(p.capped.p99)
            << " us vs uncapped " << in_us(p.uncapped.p99) << " us)\n";
  return ok;
}

struct RouteTally {
  std::uint64_t offpeak_epochs = 0, peak_epochs = 0;
  std::uint64_t offpeak_ntc = 0, offpeak_conv = 0;
  std::uint64_t peak_ntc = 0, peak_conv = 0;
};

RouteTally tally_routes(const dc::FleetResult& r) {
  RouteTally t;
  for (const auto& e : r.router_epochs) {
    if (e.routed.size() < 2) continue;
    if (e.offpeak) {
      ++t.offpeak_epochs;
      t.offpeak_ntc += e.routed[0];
      t.offpeak_conv += e.routed[1];
    } else {
      ++t.peak_epochs;
      t.peak_ntc += e.routed[0];
      t.peak_conv += e.routed[1];
    }
  }
  return t;
}

/// Acceptance (c): off-peak, dispatch consolidates onto the NTC group;
/// at peak, the conventional group carries the latency-critical stream.
bool router_acceptance(const dc::FleetResult& r) {
  bool ok = true;
  const RouteTally t = tally_routes(r);
  check(lossless(r), "the routed run completes losslessly", ok);
  check(t.offpeak_epochs > 0 && t.peak_epochs > 0,
        "the diurnal day produces both off-peak and peak epochs", ok);
  check(t.offpeak_ntc > t.offpeak_conv,
        "off-peak load consolidates onto the NTC group", ok);
  check(t.peak_conv > 0, "at peak the conventional group takes dispatches", ok);
  check(r.group_dispatches.size() == 2 &&
            r.group_dispatches[0] + r.group_dispatches[1] == r.admitted,
        "per-group dispatch ledger tiles the admitted count", ok);
  return ok;
}

int run_smoke() {
  bool ok = true;
  std::cout << "[autoscale]\n";
  const AutoscalePair as = run_autoscale();
  ok = autoscale_acceptance(as) && ok;
  std::cout << "[power cap]\n";
  const CapPair cap = run_cap();
  ok = cap_acceptance(cap) && ok;
  std::cout << "[multi-fleet routing]\n";
  const auto routed = dc::run_scenario(dc::Scenario::by_name("multifleet-ntc-conv"), ghz(2.0));
  ok = router_acceptance(routed) && ok;
  if (ok) {
    const double saving = 1.0 - as.scaled.energy.value() / as.fixed.energy.value();
    std::cout << "SMOKE PASS: autoscale saves " << saving * 100.0 << "% ("
              << as.scaled.autoscale_parks << " parks), cap clamps "
              << cap.capped.cap_clamp_epochs << " chip-epochs with 0 violations, "
              << "router off-peak NTC share "
              << tally_routes(routed).offpeak_ntc << " dispatches\n";
  } else {
    std::cout << "SMOKE FAIL\n";
  }
  return ok ? 0 : 1;
}

void print_autoscale(const AutoscalePair& p) {
  std::cout << "Autoscaling the diurnal day (autoscale-diurnal-web, fixed-max chips):\n";
  TextTable t({"arm", "energy (mJ)", "p99 (us)", "parks", "unparks", "drains",
               "parked (ms)", "wake E (mJ)", "avg f (GHz)"});
  const auto add = [&](const char* label, const dc::FleetResult& r) {
    t.add_row({std::string(label) + bench::truncated_mark(r),
               TextTable::num(r.energy.value() * 1e3, 2), TextTable::num(in_us(r.p99), 1),
               std::to_string(r.autoscale_parks), std::to_string(r.autoscale_unparks),
               std::to_string(r.autoscale_drains),
               TextTable::num(r.parked_seconds.value() * 1e3, 3),
               TextTable::num(r.wake_energy.value() * 1e3, 3),
               TextTable::num(r.avg_frequency_ghz, 3)});
  };
  add("autoscaled", p.scaled);
  add("fixed-size", p.fixed);
  bench::print_table(t, "fig7_autoscale");
  const double saving = 1.0 - p.scaled.energy.value() / p.fixed.energy.value();
  std::cout << "Autoscaling saves " << saving * 100.0 << "% fleet energy at equal QoS (bound "
            << kAutoscaleP99BoundUs << " us)\n\n";
}

void print_cap(const CapPair& p) {
  std::cout << "Fleet power cap (powercap-web, ondemand chips):\n";
  TextTable t({"arm", "cap (W)", "peak power (W)", "clamp epochs", "violations",
               "p99 (us)", "energy (mJ)", "avg f (GHz)"});
  const auto add = [&](const char* label, const dc::FleetResult& r) {
    t.add_row({std::string(label) + bench::truncated_mark(r),
               r.fleet_cap.value() > 0.0 ? TextTable::num(r.fleet_cap.value(), 1) : "-",
               TextTable::num(r.peak_epoch_power.value(), 1),
               std::to_string(r.cap_clamp_epochs), std::to_string(r.cap_violation_epochs),
               TextTable::num(in_us(r.p99), 1), TextTable::num(r.energy.value() * 1e3, 2),
               TextTable::num(r.avg_frequency_ghz, 3)});
  };
  add("capped", p.capped);
  add("uncapped", p.uncapped);
  bench::print_table(t, "fig7_powercap");
  std::cout << "Tail cost of the cap: " << in_us(p.capped.p99) - in_us(p.uncapped.p99)
            << " us of p99\n\n";
}

void print_router(const dc::FleetResult& r) {
  std::cout << "NTC vs conventional routing (multifleet-ntc-conv):\n";
  const RouteTally tt = tally_routes(r);
  TextTable t({"phase", "epochs", "-> ntc", "-> conv"});
  t.add_row({"off-peak", std::to_string(tt.offpeak_epochs), std::to_string(tt.offpeak_ntc),
             std::to_string(tt.offpeak_conv)});
  t.add_row({"peak", std::to_string(tt.peak_epochs), std::to_string(tt.peak_ntc),
             std::to_string(tt.peak_conv)});
  bench::print_table(t, "fig7_routing_phases");
  if (r.has_routing()) {
    TextTable g({"group", "dispatches", "energy (mJ)"});
    for (std::size_t i = 0; i < r.group_names.size(); ++i) {
      g.add_row({r.group_names[i], std::to_string(r.group_dispatches[i]),
                 TextTable::num(r.group_energy[i].value() * 1e3, 2)});
    }
    bench::print_table(g, "fig7_routing_groups");
  }
  if (!r.tenants.empty()) {
    std::cout << "Interactive tenant p99: " << in_us(r.tenants[0].p99) << " us\n";
  }
  std::cout << "\n";
}

void print_provisioning() {
  // Chips-per-bound, with and without the autoscaler, on the diurnal
  // scenario. Traffic is held constant while the fleet size sweeps.
  const dc::Scenario s = dc::Scenario::by_name("autoscale-diurnal-web");
  std::vector<dse::ProvisioningArm> arms(2);
  arms[0].label = "fixed";
  arms[1].label = "autoscaled";
  arms[1].orchestration = s.orchestration;
  const auto sweep = dse::sweep_provisioning(s, {2, 3, 4, 5}, arms,
                                             microseconds(kAutoscaleP99BoundUs), ghz(2.0));
  std::cout << "Provisioning sweep (p99 bound " << kAutoscaleP99BoundUs << " us):\n";
  TextTable t({"chips", "arm", "p99 (us)", "energy (mJ)", "parked (ms)", "meets"});
  for (const auto& p : sweep.points) {
    for (std::size_t a = 0; a < sweep.arm_labels.size(); ++a) {
      const auto& r = p.results[a];
      t.add_row({std::to_string(p.chips), sweep.arm_labels[a] + bench::truncated_mark(r),
                 TextTable::num(in_us(r.p99), 1), TextTable::num(r.energy.value() * 1e3, 2),
                 TextTable::num(r.parked_seconds.value() * 1e3, 3),
                 sweep.meets(r) ? "yes" : "no"});
    }
  }
  bench::print_table(t, "fig7_provisioning");
  std::cout << "Min chips meeting the bound: fixed " << sweep.min_chips(0)
            << ", autoscaled " << sweep.min_chips(1) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  const bench::TelemetryOptions topts =
      bench::parse_telemetry(argc, argv, "autoscale-diurnal-web");
  if (topts.any()) return bench::run_telemetry(topts);

  bench::print_header(
      "Fig. 7 (orchestration) — autoscaling, fleet power capping, and "
      "NTC-vs-conventional tech routing",
      "Pahlevan et al., DATE'16: elastic operation of the scale-out NTC fleet");

  bool accepted = true;

  const AutoscalePair as = run_autoscale();
  print_autoscale(as);
  accepted = autoscale_acceptance(as) && accepted;
  std::cout << "\n";

  const CapPair cap = run_cap();
  print_cap(cap);
  accepted = cap_acceptance(cap) && accepted;
  std::cout << "\n";

  const auto routed = dc::run_scenario(dc::Scenario::by_name("multifleet-ntc-conv"), ghz(2.0));
  print_router(routed);
  accepted = router_acceptance(routed) && accepted;
  std::cout << "\n";

  print_provisioning();

  std::cout << (accepted ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL")
            << " (autoscale >= 15% energy at equal QoS; cap binds but is never "
               "violated; off-peak consolidates onto the NTC group)\n";
  return accepted ? 0 : 1;
}
