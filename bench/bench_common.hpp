// Shared configuration for the figure/table regeneration benches.
//
// Every bench binary reproduces one artifact of the paper's evaluation
// (see DESIGN.md experiment index) and prints the same series the paper
// plots, as an ASCII table plus a CSV block for replotting.
#pragma once

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "ntserv/ntserv.hpp"

namespace ntserv::bench {

/// Platform of the paper's Sec. IV setup: 28nm FD-SOI, 9x4 cores, 4MB LLC
/// per cluster, 4x DDR4-1600 channels.
inline power::ServerPowerModel default_platform() {
  return power::ServerPowerModel{tech::TechnologyModel{tech::TechnologyParams::fdsoi28()},
                                 power::ChipConfig{}};
}

/// Simulation configuration tuned for bench turnaround: SMARTS sampling at
/// 95% confidence with slightly smaller windows than the paper's (the
/// sampling tests verify convergence behaviour separately).
inline sim::ServerSimConfig bench_sim_config(std::uint64_t seed = 1) {
  sim::ServerSimConfig cfg;
  cfg.seed = seed;
  cfg.smarts.warm_instructions = 600'000;
  cfg.smarts.warmup = 20'000;
  cfg.smarts.measure = 30'000;
  cfg.smarts.min_samples = 3;
  cfg.smarts.max_samples = 8;
  return cfg;
}

/// The paper's Fig. 2-4 frequency axis: 0.2-2.0 GHz.
inline std::vector<Hertz> paper_frequency_grid(int points = 10) {
  return sim::frequency_grid(ghz(0.2), ghz(2.0), points);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

inline void print_table(const TextTable& t, const std::string& csv_tag) {
  t.print(std::cout);
  std::cout << "\nCSV (" << csv_tag << "):\n";
  t.write_csv(std::cout);
  std::cout << "\n";
}

/// Row marker for truncated fleet runs: a run that hit its cycle cap has
/// partial metrics, and every figure driver flags its rows the same way.
/// (dse's sweeps print a stderr warning; this is the table-side half.)
inline const char* truncated_mark(bool truncated) {
  return truncated ? " [TRUNCATED]" : "";
}
inline const char* truncated_mark(const dc::FleetResult& result) {
  return truncated_mark(result.truncated);
}

/// Telemetry flags shared by every fleet-driving bench: `--trace <path>`
/// writes a Chrome/Perfetto trace-event JSON, `--metrics <path>` a
/// per-epoch metrics CSV (see docs/observability.md), `--scenario <name>`
/// overrides the driver's default registry scenario. When either output
/// flag is given the driver runs that single telemetry pass instead of
/// its figure sweep.
struct TelemetryOptions {
  std::string scenario;
  std::string trace_path;
  std::string metrics_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }
};

inline TelemetryOptions parse_telemetry(int argc, char** argv,
                                        const std::string& default_scenario) {
  TelemetryOptions opts;
  opts.scenario = default_scenario;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) opts.trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--metrics") == 0) opts.metrics_path = argv[i + 1];
    if (std::strcmp(argv[i], "--scenario") == 0) opts.scenario = argv[i + 1];
  }
  return opts;
}

/// Run one registry scenario with full telemetry and write the requested
/// outputs. Deterministic: the trace JSON and metrics CSV are
/// byte-identical for any NTSERV_THREADS. Returns a process exit code.
inline int run_telemetry(const TelemetryOptions& opts, Hertz f = ghz(2.0)) {
  const dc::Scenario scenario = dc::Scenario::by_name(opts.scenario);
  obs::Telemetry telemetry;
  telemetry.trace.enable();
  telemetry.metrics.enable();
  telemetry.timers.enable();
  // Telemetry attaches through RunOptions; the serial single-shard plan
  // is the canonical stream any sharded run must reproduce byte-for-byte.
  const dc::FleetResult result = dc::run_scenario(
      scenario, f, dc::RunOptions{.telemetry = &telemetry, .shards = 1, .threads = 1});
  std::cout << "telemetry run: " << scenario.name << " @ " << f.value() / 1e9
            << " GHz\n"
            << "  offered " << result.offered << ", completed(all) "
            << result.completed_all << ", shed " << result.shed << ", timed out "
            << result.timed_out << ", p99 " << result.p99.value() * 1e6 << " us"
            << truncated_mark(result) << "\n"
            << "  trace events " << telemetry.trace.events().size() << "\n";
  if (!opts.trace_path.empty()) {
    std::ofstream os(opts.trace_path);
    if (!os) {
      std::cerr << "cannot open trace output: " << opts.trace_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(os, telemetry.trace, dc::trace_meta(scenario),
                            &telemetry.metrics);
    std::cout << "  wrote trace JSON: " << opts.trace_path << "\n";
  }
  if (!opts.metrics_path.empty()) {
    std::ofstream os(opts.metrics_path);
    if (!os) {
      std::cerr << "cannot open metrics output: " << opts.metrics_path << "\n";
      return 1;
    }
    // A .jsonl suffix switches the time-series format; anything else
    // writes CSV.
    const bool jsonl = opts.metrics_path.size() >= 6 &&
                       opts.metrics_path.compare(opts.metrics_path.size() - 6, 6,
                                                 ".jsonl") == 0;
    if (jsonl) {
      telemetry.metrics.write_jsonl(os);
    } else {
      telemetry.metrics.write_csv(os);
    }
    std::cout << "  wrote metrics " << (jsonl ? "JSONL" : "CSV") << ": "
              << opts.metrics_path << " (" << telemetry.metrics.rows()
              << " epochs)\n";
  }
  std::cout << "  self-profile (wall clock, not part of the telemetry files):\n";
  telemetry.timers.report(std::cout);
  return 0;
}

}  // namespace ntserv::bench
