// Shared configuration for the figure/table regeneration benches.
//
// Every bench binary reproduces one artifact of the paper's evaluation
// (see DESIGN.md experiment index) and prints the same series the paper
// plots, as an ASCII table plus a CSV block for replotting.
#pragma once

#include <iostream>
#include <string>

#include "ntserv/ntserv.hpp"

namespace ntserv::bench {

/// Platform of the paper's Sec. IV setup: 28nm FD-SOI, 9x4 cores, 4MB LLC
/// per cluster, 4x DDR4-1600 channels.
inline power::ServerPowerModel default_platform() {
  return power::ServerPowerModel{tech::TechnologyModel{tech::TechnologyParams::fdsoi28()},
                                 power::ChipConfig{}};
}

/// Simulation configuration tuned for bench turnaround: SMARTS sampling at
/// 95% confidence with slightly smaller windows than the paper's (the
/// sampling tests verify convergence behaviour separately).
inline sim::ServerSimConfig bench_sim_config(std::uint64_t seed = 1) {
  sim::ServerSimConfig cfg;
  cfg.seed = seed;
  cfg.smarts.warm_instructions = 600'000;
  cfg.smarts.warmup = 20'000;
  cfg.smarts.measure = 30'000;
  cfg.smarts.min_samples = 3;
  cfg.smarts.max_samples = 8;
  return cfg;
}

/// The paper's Fig. 2-4 frequency axis: 0.2-2.0 GHz.
inline std::vector<Hertz> paper_frequency_grid(int points = 10) {
  return sim::frequency_grid(ghz(0.2), ghz(2.0), points);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

inline void print_table(const TextTable& t, const std::string& csv_tag) {
  t.print(std::cout);
  std::cout << "\nCSV (" << csv_tag << "):\n";
  t.write_csv(std::cout);
  std::cout << "\n";
}

/// Row marker for truncated fleet runs: a run that hit its cycle cap has
/// partial metrics, and every figure driver flags its rows the same way.
/// (dse's sweeps print a stderr warning; this is the table-side half.)
inline const char* truncated_mark(bool truncated) {
  return truncated ? " [TRUNCATED]" : "";
}
inline const char* truncated_mark(const dc::FleetResult& result) {
  return truncated_mark(result.truncated);
}

}  // namespace ntserv::bench
